"""Multi-endpoint inference gateway: capacity-weighted sharding, streaming merge.

:class:`InferenceGateway` fans one request batch out across several
endpoints — local :class:`~repro.serve.ChipSession`\\ s and
:class:`~repro.serve.ChipPool`\\ s, remote
:class:`~repro.serve.distributed.client.RemoteSession`\\ s /
:class:`~repro.serve.distributed.client.PipelinedSession`\\ s, anything with
the ``infer`` contract — and merges the shard responses into one exact
result.

Sharding is *capacity-weighted and load-aware*: an endpoint with capacity 3
(say, a remote pool with ``jobs=3``) receives three times the samples of a
capacity-1 session, via cumulative rounding so the contiguous shard sizes
always sum to the batch exactly — but the static weight is discounted by the
endpoint's observed backlog (gateway shards planned onto it and not yet
finished, plus the server's last-polled ``queue_depth``/``inflight``), so a
congested server receives less of each new batch instead of stretching its
queue further.  Server backlog is polled by a **background refresher
thread**, never on the submit path: ``submit()`` reads only cached hints, so
a wedged endpoint's ``info`` can never stall dispatch.  A shard that an
overloaded or draining server *sheds* (structured ``overloaded`` /
``draining`` error) is retried on the least-loaded sibling endpoint within
the request's :class:`~repro.serve.retry.RetryBudget` (jittered backoff
between hops; exhaustion surfaces as a structured
:class:`~repro.serve.retry.RetryBudgetExhausted`), and per-request deadlines
propagate to every endpoint that understands them.

The gateway also mitigates *stragglers*: with hedging enabled
(``hedge_after_s`` and/or ``hedge_percentile``), a shard whose wait exceeds
the straggler threshold is **hedged** — duplicated to the least-loaded
serving sibling.  The first attempt to finish wins the shard; the loser is
cancelled best-effort (over the wire via the v2 ``cancel`` op, tagged
``reason="hedge"``, when the endpoint hands out cancellable futures), and a
losing attempt that still completes is counted as wasted compute.  Hedging
is exact for the same reason shed-retry is: shards are deterministic,
idempotent functions of their absolute sample range, so whichever attempt
wins returns bit-identical numbers.  A hedge never fires past the request
deadline, and a failed hedge cancel never fails the request.  Because every
shard carries its absolute ``sample_offset`` and every endpoint derives
spike trains from the same shard-stable
:class:`~repro.snn.encoding.EncoderState` seeding, the merged response is
result-identical to running the whole batch on any single endpoint — any
placement the load feedback picks yields the same numbers — provided the
endpoints serve the *same workload* (same SNN, config, seed, encoder and
timesteps), which is the operator's contract.

The gateway is **non-blocking**: :meth:`InferenceGateway.submit` dispatches
every shard concurrently and returns a :class:`concurrent.futures.Future`
immediately.  Shard completions stream into the merged result as they
arrive — the big per-sample arrays are written straight into their
preallocated slots — and the first shard failure resolves the future with
an error naming the endpoint instead of hanging the merge on the survivors.
Multiple batches may be in flight at once; a per-endpoint lock keeps each
endpoint serving one shard at a time (endpoints own their internal
concurrency), so successive batches pipeline across endpoints instead of
running lock-step.

Membership is **dynamic**: :meth:`InferenceGateway.add_endpoint`,
:meth:`~InferenceGateway.drain_endpoint` and
:meth:`~InferenceGateway.remove_endpoint` change the fleet while batches are
in flight.  A shard plan holds direct references to its endpoints, so
in-flight batches always complete against the endpoints they were planned
on; the next ``submit()`` sees the updated membership.  Draining endpoints
are skipped by the planner (and by shed-retry) but keep serving the shards
already placed on them — exactly the handshake a fleet controller needs to
retire a replica without failing work.

The merge is exact: predictions and spike counts concatenate per-sample,
event counters sum, and the energy report is the component-wise sum of the
shard reports (every component is linear in its counters and in the shard's
batch-duration, so the sum equals the full-batch report to floating-point
accumulation order).  Counters and energy are reduced in shard-plan order
regardless of completion order, so the merged numbers are deterministic.
"""

from __future__ import annotations

import contextlib
import inspect
import threading
import time
from collections import deque
from concurrent.futures import (
    CancelledError,
    Future,
    InvalidStateError,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.serve.distributed.client import RemoteServerError
from repro.serve.metrics import (
    PHASE_MERGE,
    MetricsRegistry,
    get_default_registry,
    merge_phases,
    record_phase,
)
from repro.serve.retry import RetryBudget, RetryBudgetExhausted
from repro.serve.schema import (
    ERROR_DRAINING,
    ERROR_OVERLOADED,
    InferenceRequest,
    InferenceResponse,
)

__all__ = ["GatewayEndpoint", "InferenceGateway"]

#: Hard bound on one endpoint load poll.  Polls run on the background
#: refresher thread (never the submit path), but one wedged endpoint must
#: not starve the refresh of its healthy siblings for longer than this.
LOAD_POLL_TIMEOUT_S = 1.0

#: Structured server errors that make a shard eligible for retry on a
#: sibling endpoint (the server refused the work without starting it).
_SHED_RETRY_CODES = frozenset({ERROR_OVERLOADED, ERROR_DRAINING})

#: Rolling window of observed shard latencies feeding the adaptive
#: (percentile-derived) straggler threshold.
_HEDGE_LATENCY_WINDOW = 128

#: Minimum observations before the percentile threshold is trusted; until
#: then a percentile-only gateway does not hedge (and a fixed
#: ``hedge_after_s`` keeps working on its own).
_HEDGE_MIN_SAMPLES = 8

#: Floor on any hedge threshold: hedging sub-millisecond "stragglers" would
#: duplicate nearly every shard.
_HEDGE_FLOOR_S = 1e-3


@dataclass
class GatewayEndpoint:
    """One inference target behind the gateway, with its sharding weight.

    ``capacity`` defaults to the target's own ``capacity`` attribute (a
    :class:`RemoteSession` reports its server's worker count), then to its
    ``jobs`` attribute (a local pool), then to 1.  An explicit capacity must
    be positive — a zero-capacity endpoint could never receive a shard.

    The gateway additionally tracks per-endpoint *load*: how many of its own
    shards are currently on the endpoint (``inflight``) plus the endpoint's
    last-polled server backlog (``load_hint``), which together discount the
    static capacity during adaptive sharding.
    """

    target: object
    capacity: float | None = None
    name: str = ""
    #: Serialises this endpoint's shards across in-flight gateway batches.
    lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )
    #: Gateway shards planned onto this endpoint and not yet finished
    #: (queued behind the endpoint lock, executing, or mid-retry).
    inflight: int = field(default=0, init=False, repr=False, compare=False)
    #: Last polled remote backlog (server queue depth + inflight).
    load_hint: float = field(default=0.0, init=False, repr=False, compare=False)
    #: ``time.monotonic()`` of the last backlog poll.
    load_polled_at: float = field(default=0.0, init=False, repr=False, compare=False)
    #: Last polled ``info`` envelope (refresher-populated; what a fleet
    #: controller reads for shed counters and lifecycle state).
    info_hint: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: Draining (graceful retirement): the planner and shed-retry skip this
    #: endpoint, but shards already placed on it run to completion.
    draining: bool = field(default=False, init=False, repr=False, compare=False)
    #: Whether ``target.infer`` accepts a ``deadline_s`` keyword (remote
    #: sessions do; local sessions execute immediately, so there is nothing
    #: for a deadline to shed).
    supports_deadline: bool = field(
        default=False, init=False, repr=False, compare=False
    )
    #: Whether ``target.submit`` exists (pipelined remotes): hedged dispatch
    #: then gets a cancellable future, so losing attempts can be revoked on
    #: the server instead of computing an orphaned answer.
    supports_submit: bool = field(default=False, init=False, repr=False, compare=False)
    #: Whether that ``submit`` accepts a ``deadline_s`` keyword.
    submit_supports_deadline: bool = field(
        default=False, init=False, repr=False, compare=False
    )
    #: Hedges issued *against* this endpoint (its shard straggled and was
    #: duplicated elsewhere) — a fleet controller's slow-replica signal.
    hedges: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not hasattr(self.target, "infer"):
            raise TypeError(
                f"gateway endpoint target must provide infer(); got "
                f"{type(self.target).__name__}"
            )
        if self.capacity is None:
            self.capacity = float(
                getattr(self.target, "capacity", 0)
                or getattr(self.target, "jobs", 0)
                or 1
            )
        self.capacity = float(self.capacity)
        if self.capacity <= 0:
            raise ValueError(f"endpoint capacity must be > 0, got {self.capacity}")
        if not self.name:
            self.name = f"{type(self.target).__name__.lower()}"
        try:
            self.supports_deadline = (
                "deadline_s" in inspect.signature(self.target.infer).parameters
            )
        except (TypeError, ValueError):  # builtins / exotic callables
            self.supports_deadline = False
        submitter = getattr(self.target, "submit", None)
        if callable(submitter):
            try:
                self.submit_supports_deadline = (
                    "deadline_s" in inspect.signature(submitter).parameters
                )
                self.supports_submit = True
            except (TypeError, ValueError):
                self.supports_submit = False


@dataclass
class _ShardPlan:
    endpoint: GatewayEndpoint
    start: int
    stop: int
    response: InferenceResponse | None = field(default=None, repr=False)
    #: Name of the endpoint originally planned, when the shard was shed
    #: there and re-ran on ``endpoint`` instead.
    retried_from: str | None = None
    #: Sibling a hedge duplicate was dispatched to (set when it fires).
    hedged_to: str | None = None
    #: Straggler endpoint a *winning* hedge rescued this shard from.
    hedged_from: str | None = None
    #: Shed retries this shard consumed from the request's budget.
    retries: int = 0


class _MergeState:
    """Accumulates streaming shard completions into one merged response."""

    def __init__(
        self,
        gateway: "InferenceGateway",
        request: InferenceRequest,
        plan: list[_ShardPlan],
        result: Future,
    ):
        self.gateway = gateway
        self.request = request
        self.plan = plan
        self.result = result
        self.lock = threading.Lock()
        self.remaining = len(plan)
        self.resolved = False
        self.predictions: np.ndarray | None = None
        self.spike_counts: np.ndarray | None = None
        self.shard_futures: list[Future] = []

    def shard_done(self, shard: _ShardPlan, future: Future) -> None:
        try:
            self._absorb(shard, future)
        except Exception as exc:  # noqa: BLE001 - the caller only sees the future
            # A merge failure (say, endpoints serving different output
            # widths) must surface on the result, never vanish into the
            # callback machinery and leave the caller hanging.
            with self.lock:
                self.resolved = True
            try:
                self.result.set_exception(exc)
            except InvalidStateError:
                pass

    def _absorb(self, shard: _ShardPlan, future: Future) -> None:
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None:
            # First failure wins: surface it now, cancel what has not
            # started, and let the in-flight survivors finish idle.
            with self.lock:
                if self.resolved:
                    return
                self.resolved = True
                siblings = [f for f in self.shard_futures if f is not future]
            # Outside the lock: cancelling a pending future runs its
            # done-callback (this method, for the sibling shard) inline on
            # this very thread, which must not find the lock held.
            for other in siblings:
                other.cancel()
            if isinstance(exc, RetryBudgetExhausted):
                # Already a structured, self-describing error (attempts,
                # retries, chained cause): surface it unwrapped so callers
                # can branch on the type.
                self.result.set_exception(exc)
                return
            self.result.set_exception(
                RuntimeError(
                    f"gateway endpoint {shard.endpoint.name!r} failed on "
                    f"shard [{shard.start}:{shard.stop}): "
                    f"{type(exc).__name__}: {exc}"
                )
            )
            return
        response: InferenceResponse = future.result()
        with self.lock:
            if self.resolved:
                return
            shard.response = response
            # Stream the per-sample arrays straight into the merged slots.
            batch = self.request.batch_size
            if self.predictions is None:
                self.predictions = np.zeros(batch, dtype=response.predictions.dtype)
                self.spike_counts = np.zeros(
                    (batch, response.spike_counts.shape[1]),
                    dtype=response.spike_counts.dtype,
                )
            self.predictions[shard.start : shard.stop] = response.predictions
            self.spike_counts[shard.start : shard.stop] = response.spike_counts
            self.remaining -= 1
            if self.remaining > 0:
                return
            self.resolved = True
        self._finalise()

    def _finalise(self) -> None:
        merge_started = time.monotonic()
        plan, request = self.plan, self.request
        responses = [shard.response for shard in plan]
        # Deterministic reduction: counters and energy merge in plan order,
        # whatever order the shards completed in.
        counters = responses[0].counters
        energy = responses[0].energy
        for shard_response in responses[1:]:
            counters = counters.merge(shard_response.counters)
            energy = energy.merged_with(shard_response.energy)
        accuracy = None
        if request.labels is not None:
            accuracy = float(
                np.mean(self.predictions == np.asarray(request.labels, dtype=int))
            )
        backends = {r.backend for r in responses}
        metadata: dict[str, object] = {
            "gateway": self.gateway.name,
            "shards": [
                {
                    "endpoint": shard.endpoint.name,
                    "start": shard.start,
                    "stop": shard.stop,
                    "jobs": shard.response.jobs,
                    **(
                        {"retried_from": shard.retried_from}
                        if shard.retried_from is not None
                        else {}
                    ),
                    **({"retries": shard.retries} if shard.retries else {}),
                    **(
                        {"hedged_to": shard.hedged_to}
                        if shard.hedged_to is not None
                        else {}
                    ),
                    **(
                        {"hedged_from": shard.hedged_from}
                        if shard.hedged_from is not None
                        else {}
                    ),
                }
                for shard in plan
            ],
        }
        # Shards ran concurrently, so the merged request's phase spans
        # follow the critical path: per phase, the slowest shard's span.
        # The gateway's own merge work is then added on top.
        merge_phases(metadata, [r.metadata for r in responses])
        merge_s = time.monotonic() - merge_started
        record_phase(metadata, PHASE_MERGE, merge_s)
        self.gateway._m_merge.observe(merge_s)
        self.result.set_result(
            InferenceResponse(
                predictions=self.predictions,
                spike_counts=self.spike_counts,
                accuracy=accuracy,
                counters=counters,
                energy=energy,
                timesteps=responses[0].timesteps,
                backend=backends.pop() if len(backends) == 1 else "mixed",
                batch_size=request.batch_size,
                jobs=int(sum(r.jobs for r in responses)),
                metadata=metadata,
            )
        )


class _ShardAttempt:
    """One dispatch of a shard onto one endpoint (primary or hedge)."""

    __slots__ = ("endpoint", "hedge", "started", "task", "wire_future", "ended")

    def __init__(self, endpoint: GatewayEndpoint, *, hedge: bool):
        self.endpoint = endpoint
        self.hedge = hedge
        self.started: float | None = None
        #: The dispatch pool task running this attempt (cancellable only
        #: while still queued).
        self.task: Future | None = None
        #: The endpoint's in-flight cancellable future, while blocked on it.
        self.wire_future: Future | None = None
        #: Set exactly once, when the attempt's inflight charge is released.
        self.ended = False


class _ShardRun:
    """One shard's dispatch lifecycle: primary attempt, hedge, budget retries.

    Every attempt is an independent dispatch-pool task; the run resolves
    ``result`` (what the merge consumes) with whichever attempt finishes
    first.  Nothing here ever blocks on another pool task, so hedging adds
    load to the pool but can never deadlock it.  The straggler timer fires
    on its own daemon thread and only *schedules* the hedge.
    """

    def __init__(
        self,
        gateway: "InferenceGateway",
        shard: _ShardPlan,
        sub_request: InferenceRequest,
        deadline_s: float | None,
        budget: RetryBudget,
        result: Future,
    ):
        self.gateway = gateway
        self.shard = shard
        self.sub_request = sub_request
        self.deadline_s = deadline_s
        self.budget = budget
        self.result = result
        self.lock = threading.Lock()
        self.attempts: list[_ShardAttempt] = []
        self.winner: _ShardAttempt | None = None
        self.hedged = False
        self.timer: threading.Timer | None = None

    # -- launch -------------------------------------------------------------------

    def start(self) -> None:
        """Dispatch the primary attempt and arm the straggler timer.

        The hedge timer is armed only when a threshold exists *and* it
        precedes the request deadline: past the deadline the server has
        already shed the primary, so a duplicate could never win — a hedge
        never fires past the request deadline.
        """
        primary = _ShardAttempt(self.shard.endpoint, hedge=False)
        with self.lock:
            self.attempts.append(primary)
        threshold = self.gateway.hedge_threshold()
        if threshold is not None and (
            self.deadline_s is None or threshold < self.deadline_s
        ):
            self.timer = threading.Timer(threshold, self._fire_hedge)
            self.timer.daemon = True
            self.timer.start()
        primary.task = self.gateway._threads.submit(self._run_attempt, primary)

    def abandon(self) -> None:
        """The merged request no longer wants this shard; revoke best-effort."""
        if self.timer is not None:
            self.timer.cancel()
        with self.lock:
            pending = [a for a in self.attempts if not a.ended]
        for attempt in pending:
            if self.gateway._cancel_attempt(attempt):
                self._end_attempt(attempt)

    # -- hedging ------------------------------------------------------------------

    def _fire_hedge(self) -> None:
        """Timer body: duplicate the straggling shard onto a sibling."""
        with self.lock:
            if self.winner is not None or self.hedged or self.result.done():
                return
            primary = self.attempts[0]
            attempted = [a.endpoint for a in self.attempts]
        if self.deadline_s is not None:
            # Re-check at fire time: an early timer must still never hedge
            # work the deadline has already condemned.
            if time.monotonic() - (primary.started or 0.0) >= self.deadline_s:
                return
        sibling = self.gateway._fallback_for(primary.endpoint, exclude=attempted)
        if sibling is None:
            return
        attempt = _ShardAttempt(sibling, hedge=True)
        with self.lock:
            if self.winner is not None or self.result.done():
                return
            self.hedged = True
            self.attempts.append(attempt)
        self.shard.hedged_to = sibling.name
        with self.gateway._load_lock:
            sibling.inflight += 1
            primary.endpoint.hedges += 1
        self.gateway._count_tail("hedges_issued", self.gateway._m_hedges)
        try:
            attempt.task = self.gateway._threads.submit(self._run_attempt, attempt)
        except RuntimeError:  # gateway closed under the timer
            self._end_attempt(attempt)

    # -- attempt execution --------------------------------------------------------

    def _run_attempt(self, attempt: _ShardAttempt) -> None:
        attempt.started = time.monotonic()
        with self.lock:
            already_won = self.winner is not None
        if already_won:  # lost before ever starting (pool queue)
            self._attempt_cancelled(attempt)
            return
        while True:
            try:
                response = self.gateway._infer_on_attempt(
                    attempt, self.sub_request, self.deadline_s
                )
            except CancelledError:
                self._attempt_cancelled(attempt)
                return
            except RemoteServerError as exc:
                error: BaseException = exc
                if exc.code in _SHED_RETRY_CODES:
                    with self.lock:
                        won = self.winner is not None
                    if not won:
                        moved = self._shed_retry(attempt, exc)
                        if moved is None:
                            continue
                        error = moved
                self._attempt_failed(attempt, error)
                return
            except BaseException as exc:  # noqa: BLE001 - routed into the future
                self._attempt_failed(attempt, exc)
                return
            self._attempt_finished(attempt, response)
            return

    def _shed_retry(
        self, attempt: _ShardAttempt, exc: RemoteServerError
    ) -> BaseException | None:
        """Move a shed attempt to a sibling within the request's budget.

        Returns ``None`` when the attempt moved (caller loops and re-runs),
        else the error to surface — the original shed error when no sibling
        is available, or the structured budget-exhaustion error.
        """
        with self.lock:
            attempted = [a.endpoint for a in self.attempts if a is not attempt]
        fallback = self.gateway._fallback_for(attempt.endpoint, exclude=attempted)
        if fallback is None:
            return exc
        consumed = self.budget.try_consume()
        if consumed is None:
            self.gateway._count_tail(
                "budget_exhausted", self.gateway._m_budget_exhausted
            )
            return self.budget.exhausted(exc)
        # Jittered backoff before the hop: an overloaded fleet being
        # hammered by synchronized immediate retries stays overloaded.
        time.sleep(self.budget.backoff_s(consumed))
        with self.gateway._load_lock:
            attempt.endpoint.inflight -= 1
            fallback.inflight += 1
        with self.lock:
            if not attempt.hedge and self.shard.retried_from is None:
                self.shard.retried_from = attempt.endpoint.name
            self.shard.retries += 1
            attempt.endpoint = fallback
        self.gateway._count_tail("retries", self.gateway._m_retries)
        return None

    # -- attempt outcomes ---------------------------------------------------------

    def _end_attempt(self, attempt: _ShardAttempt) -> None:
        """Release the attempt's inflight charge (idempotent)."""
        with self.lock:
            if attempt.ended:
                return
            attempt.ended = True
        with self.gateway._load_lock:
            attempt.endpoint.inflight -= 1

    def _attempt_finished(
        self, attempt: _ShardAttempt, response: InferenceResponse
    ) -> None:
        if attempt.started is not None:
            self.gateway._observe_shard_latency(time.monotonic() - attempt.started)
        self._end_attempt(attempt)
        with self.lock:
            if self.winner is not None:
                # Lost the race but computed a full answer anyway: the
                # cancel could not save this work.
                wasted = True
                losers: list[_ShardAttempt] = []
            else:
                self.winner = attempt
                wasted = False
                losers = [a for a in self.attempts if a is not attempt and not a.ended]
        if wasted:
            self.gateway._count_tail("hedge_wasted_compute", self.gateway._m_wasted)
            return
        if self.timer is not None:
            self.timer.cancel()
        for loser in losers:
            # Best-effort: a failed cancel must never fail the request.
            if self.gateway._cancel_attempt(loser):
                self._end_attempt(loser)
        if attempt.hedge:
            self.shard.hedged_from = self.attempts[0].endpoint.name
            self.gateway._count_tail("hedge_wins", self.gateway._m_hedge_wins)
        self.shard.endpoint = attempt.endpoint
        with contextlib.suppress(InvalidStateError):
            self.result.set_result(response)

    def _attempt_failed(self, attempt: _ShardAttempt, exc: BaseException) -> None:
        self._end_attempt(attempt)
        with self.lock:
            if self.winner is not None:
                # A loser failing after the win (typically: its cancel
                # landed server-side as a structured ``cancelled`` error)
                # is the hedge working as intended.
                return
            if any(not a.ended for a in self.attempts if a is not attempt):
                # A sibling attempt is still live; give it the chance to
                # win before surfacing anything.
                return
        with contextlib.suppress(InvalidStateError):
            self.result.set_exception(exc)

    def _attempt_cancelled(self, attempt: _ShardAttempt) -> None:
        self._end_attempt(attempt)
        with self.lock:
            if self.winner is not None:
                return
            if any(not a.ended for a in self.attempts if a is not attempt):
                return
        # Every attempt revoked with no winner: the request abandoned us.
        self.result.cancel()


class InferenceGateway:
    """Fan batches out across endpoints and merge the responses exactly.

    Parameters
    ----------
    adaptive:
        When True (default), sharding weights are the endpoints' *effective*
        capacities — the static weight discounted by the observed backlog
        (gateway shards already on the endpoint plus the server's polled
        queue depth): ``capacity / (1 + backlog)``.  Idle endpoints keep
        their static weights exactly, so a quiet gateway plans the same
        shards the static planner did.  Any shard split is result-identical
        (sharding is exact), so adaptivity changes placement, never numbers.
    load_poll_s:
        Interval of the background load refresher (seconds).  The refresher
        thread polls every endpoint's backlog on this cadence and caches
        the hints; ``submit()`` only ever reads the cache.  Only pipelined
        remotes (thread-safe ``info``, live ``queue_depth`` / ``inflight``
        fields) are polled, each poll bounded by
        :data:`LOAD_POLL_TIMEOUT_S`; other targets may export a ``load()``
        method returning their backlog from local state, and everything
        else contributes only the gateway's own planned-shard count.
        :meth:`refresh_load_hints` forces one synchronous sweep (what the
        refresher runs; handy in tests and controllers).
    hedge_after_s:
        Fixed straggler threshold: a shard still unfinished after this many
        seconds is duplicated onto the least-loaded serving sibling; the
        first attempt to finish wins, the loser is cancelled best-effort.
        ``None`` (default) disables the fixed threshold.
    hedge_percentile:
        Adaptive straggler threshold: hedge once a shard's wait exceeds
        this percentile of the last :data:`_HEDGE_LATENCY_WINDOW` observed
        shard latencies (needs :data:`_HEDGE_MIN_SAMPLES` observations;
        combined with ``hedge_after_s`` the *larger* of the two wins, so a
        fixed knob acts as a floor under a twitchy percentile).  ``None``
        (default) disables.  Hedging is off only when both are ``None``.
    retry_attempts:
        Shed/``draining`` retries per *planned shard* folded into the
        default per-request :class:`RetryBudget` (pooled across the whole
        request) when the request does not carry its own budget.  The
        default of 1 preserves the historical single-hop allowance — now
        with jittered backoff between hops.
    retry_backoff_base_s / retry_backoff_cap_s:
        Backoff policy of that default budget (first hop sleeps about
        ``base``, doubling per retry up to ``cap``, jittered ±50%).
    """

    def __init__(
        self,
        endpoints: Sequence[GatewayEndpoint | object],
        *,
        name: str = "gateway",
        adaptive: bool = True,
        load_poll_s: float = 0.25,
        registry: MetricsRegistry | None = None,
        hedge_after_s: float | None = None,
        hedge_percentile: float | None = None,
        retry_attempts: int = 1,
        retry_backoff_base_s: float = 0.02,
        retry_backoff_cap_s: float = 0.5,
    ):
        if not endpoints:
            raise ValueError("gateway needs at least one endpoint")
        if load_poll_s < 0:
            raise ValueError(f"load_poll_s must be >= 0, got {load_poll_s}")
        if hedge_after_s is not None and hedge_after_s <= 0:
            raise ValueError(f"hedge_after_s must be > 0, got {hedge_after_s}")
        if hedge_percentile is not None and not 0 < hedge_percentile < 100:
            raise ValueError(
                f"hedge_percentile must be in (0, 100), got {hedge_percentile}"
            )
        if retry_attempts < 0:
            raise ValueError(f"retry_attempts must be >= 0, got {retry_attempts}")
        self.name = name
        self.adaptive = adaptive
        self.load_poll_s = load_poll_s
        self.hedge_after_s = hedge_after_s
        self.hedge_percentile = hedge_percentile
        self.retry_attempts = int(retry_attempts)
        self.retry_backoff_base_s = float(retry_backoff_base_s)
        self.retry_backoff_cap_s = float(retry_backoff_cap_s)
        self.metrics = registry if registry is not None else get_default_registry()
        self._m_requests = self.metrics.counter(
            "repro_gateway_requests_total", "batches submitted"
        )
        self._m_shards = self.metrics.counter(
            "repro_gateway_shards_total", "shards planned"
        )
        self._m_retries = self.metrics.counter(
            "repro_gateway_retries_total", "shards retried on a sibling"
        )
        self._m_hedges = self.metrics.counter(
            "repro_gateway_hedges_issued_total",
            "straggling shards duplicated onto a sibling",
        )
        self._m_hedge_wins = self.metrics.counter(
            "repro_gateway_hedge_wins_total",
            "shards won by the hedged duplicate",
        )
        self._m_wasted = self.metrics.counter(
            "repro_gateway_hedge_wasted_compute_total",
            "losing attempts that still computed a full response",
        )
        self._m_budget_exhausted = self.metrics.counter(
            "repro_gateway_budget_exhausted_total",
            "shards failed by an exhausted retry budget",
        )
        self._m_merge = self.metrics.histogram(
            "repro_gateway_merge_seconds", "shard merge wall per request"
        )
        # Plain-int mirrors of the tail counters: load-bearing (controller
        # signals, tests, benches) even when the metrics registry is the
        # process-wide disabled default.  Guarded by _load_lock.
        self._tail = {
            "hedges_issued": 0,
            "hedge_wins": 0,
            "hedge_wasted_compute": 0,
            "retries": 0,
            "budget_exhausted": 0,
        }
        #: Rolling observed shard latencies feeding hedge_percentile.
        self._shard_latencies: deque[float] = deque(maxlen=_HEDGE_LATENCY_WINDOW)
        self._endpoints = [
            e if isinstance(e, GatewayEndpoint) else GatewayEndpoint(target=e)
            for e in endpoints
        ]
        # Guards membership changes (add/remove/drain) against concurrent
        # planners; planners work on snapshots, so holding it is brief.
        self._membership_lock = threading.Lock()
        # Guards the per-endpoint inflight counters and load hints (the
        # endpoint `lock` is held for whole inferences — too coarse here).
        self._load_lock = threading.Lock()
        # Sized for several batches in flight: shards of batch k+1 queue up
        # behind the per-endpoint locks while batch k still computes.
        self._threads = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self._endpoints)),
            thread_name_prefix="gateway",
        )
        self._closed = False
        # Background load refresher: the ONLY place endpoint `info` is
        # polled, so submit() can never block on a wedged endpoint.  It
        # waits a full interval before the first sweep (an idle start plans
        # exactly like the static planner anyway), and close() joins it.
        self._refresh_stop = threading.Event()
        self._refresher: threading.Thread | None = None
        if self.adaptive:
            self._refresher = threading.Thread(
                target=self._refresh_loop,
                name=f"{self.name}-load-refresh",
                daemon=True,
            )
            self._refresher.start()

    # -- lifecycle ----------------------------------------------------------------

    def close(self, *, close_endpoints: bool = False) -> None:
        """Shut down the refresher + dispatch threads; optionally endpoints too."""
        if not self._closed:
            self._closed = True
            self._refresh_stop.set()
            if self._refresher is not None:
                self._refresher.join(timeout=10.0)
            self._threads.shutdown(wait=True)
        if close_endpoints:
            for endpoint in self.endpoints:
                closer = getattr(endpoint.target, "close", None)
                if callable(closer):
                    closer()

    def __enter__(self) -> "InferenceGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- membership ---------------------------------------------------------------

    @property
    def endpoints(self) -> list[GatewayEndpoint]:
        """Snapshot of the current membership (copy; mutation-safe)."""
        with self._membership_lock:
            return list(self._endpoints)

    def add_endpoint(
        self,
        target: GatewayEndpoint | object,
        *,
        capacity: float | None = None,
        name: str | None = None,
    ) -> GatewayEndpoint:
        """Join an endpoint to the fleet; the next ``submit()`` can use it.

        In-flight batches are untouched (their plans hold endpoint
        references).  Endpoint names must be unique — they are what
        :meth:`drain_endpoint` / :meth:`remove_endpoint` address.
        """
        endpoint = (
            target
            if isinstance(target, GatewayEndpoint)
            else GatewayEndpoint(target=target, capacity=capacity, name=name or "")
        )
        with self._membership_lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            if any(e.name == endpoint.name for e in self._endpoints):
                raise ValueError(
                    f"gateway already has an endpoint named {endpoint.name!r}"
                )
            self._endpoints.append(endpoint)
            # Keep ~2 dispatch threads available per endpoint.  stdlib pools
            # have no public resize; raising the cap is how they grow (the
            # attribute is stable across supported CPythons).
            self._threads._max_workers = max(
                self._threads._max_workers, 4, 2 * len(self._endpoints)
            )
        return endpoint

    def drain_endpoint(self, name: str) -> GatewayEndpoint:
        """Stop planning new shards onto ``name`` (in-flight work finishes).

        The scale-down handshake: drain here first, then drain the server
        (it answers everything already admitted), then
        :meth:`remove_endpoint` once it exits.
        """
        with self._membership_lock:
            for endpoint in self._endpoints:
                if endpoint.name == name:
                    endpoint.draining = True
                    return endpoint
        raise KeyError(f"gateway has no endpoint named {name!r}")

    def remove_endpoint(self, name: str) -> GatewayEndpoint:
        """Leave the fleet.  In-flight plans still complete against it."""
        with self._membership_lock:
            for index, endpoint in enumerate(self._endpoints):
                if endpoint.name == name:
                    del self._endpoints[index]
                    return endpoint
        raise KeyError(f"gateway has no endpoint named {name!r}")

    def _serving_endpoints(self) -> list[GatewayEndpoint]:
        """Endpoints new shards may be planned onto (non-draining)."""
        with self._membership_lock:
            return [e for e in self._endpoints if not e.draining]

    # -- load tracking ------------------------------------------------------------

    def _refresh_loop(self) -> None:
        # Clamp the busy-loop floor: load_poll_s=0 means "as fresh as
        # possible", not "spin a core".
        interval = max(self.load_poll_s, 0.05)
        while not self._refresh_stop.wait(interval):
            self.refresh_load_hints()

    def refresh_load_hints(self) -> None:
        """One synchronous backlog sweep over the current membership.

        This is the refresher thread's body, exposed so tests and fleet
        controllers can force a fresh sample instead of waiting out the
        poll interval.  ``submit()`` itself never calls it.
        """
        for endpoint in self.endpoints:
            self._poll_backlog(endpoint)

    def _poll_backlog(self, endpoint: GatewayEndpoint) -> float:
        """Refresh and return the endpoint's remote backlog hint.

        Two duck-typed sources, both optional: a ``load()`` method on the
        target (a local-state read), else a thread-safe ``info`` poll (only
        pipelined remotes expose both ``submit`` and ``info`` — a plain
        :class:`RemoteSession` serialises its one connection, so probing it
        concurrently with an in-flight shard would corrupt the framing).
        The info poll is bounded by :data:`LOAD_POLL_TIMEOUT_S` so one
        wedged endpoint cannot starve its siblings' refresh.  Poll failures
        (including timeouts) keep the previous hint: a dying endpoint's
        shard will fail loudly on its own.
        """
        target = endpoint.target
        hint: float | None = None
        info: dict | None = None
        loader = getattr(target, "load", None)
        if callable(loader):
            try:
                hint = float(loader())
            except Exception:  # noqa: BLE001 - load probes must never fail a plan
                hint = None
        elif hasattr(target, "submit") and callable(getattr(target, "info", None)):
            try:
                info = target.info(refresh=True, timeout=LOAD_POLL_TIMEOUT_S)
                hint = float(info.get("queue_depth", 0)) + float(
                    info.get("inflight", 0)
                )
            except Exception:  # noqa: BLE001 - load probes must never fail a plan
                hint = None
                info = None
        with self._load_lock:
            endpoint.load_polled_at = time.monotonic()
            if hint is not None:
                endpoint.load_hint = max(0.0, hint)
            if info is not None:
                endpoint.info_hint = dict(info)
            return endpoint.load_hint

    def _backlog_of(self, endpoint: GatewayEndpoint) -> float:
        """Observed backlog: planned-but-unfinished shards + cached hint.

        A pure cached read — no I/O — so every caller on the submit path
        (planning, shed-retry fallback selection) stays non-blocking.
        """
        with self._load_lock:
            return float(endpoint.inflight) + float(endpoint.load_hint)

    def endpoint_loads(self) -> dict[str, dict[str, object]]:
        """Per-endpoint load snapshot (cached; safe to call from anywhere).

        What a fleet controller samples: the gateway-side planned-shard
        count, the refresher's last server hint and ``info`` envelope, and
        the draining flag.
        """
        snapshot = self.endpoints
        loads: dict[str, dict[str, object]] = {}
        with self._load_lock:
            for endpoint in snapshot:
                loads[endpoint.name] = {
                    "backlog": float(endpoint.inflight) + float(endpoint.load_hint),
                    "inflight": int(endpoint.inflight),
                    "load_hint": float(endpoint.load_hint),
                    "draining": bool(endpoint.draining),
                    "hedges": int(endpoint.hedges),
                    "info": dict(endpoint.info_hint),
                }
        return loads

    def _effective_capacity(self, endpoint: GatewayEndpoint) -> float:
        """Static weight discounted by backlog (equal to it when idle)."""
        if not self.adaptive:
            return float(endpoint.capacity)
        return float(endpoint.capacity) / (1.0 + self._backlog_of(endpoint))

    # -- sharding -----------------------------------------------------------------

    @property
    def total_capacity(self) -> float:
        """Sum of the static capacities of the serving (non-draining) fleet."""
        return float(sum(e.capacity for e in self._serving_endpoints()))

    def shard_plan(self, batch: int) -> list[_ShardPlan]:
        """Load-aware contiguous shards covering ``[0, batch)`` exactly.

        Weights are the endpoints' effective capacities (static capacity
        discounted by cached backlog; see the class docstring) — on idle
        endpoints this is exactly the historical static capacity plan.
        Cumulative rounding keeps the boundaries monotone and the final
        boundary equal to ``batch``; endpoints whose rounded share is empty
        (small batches, heavy backlog) are skipped rather than sent
        degenerate requests.  Draining endpoints never appear in a new
        plan.  A single-endpoint plan degenerates to one whole-batch shard
        — no splitting, just the dispatch/merge envelope.
        """
        endpoints = self._serving_endpoints()
        if not endpoints:
            raise RuntimeError(
                f"gateway {self.name!r} has no serving endpoints (every "
                f"endpoint was removed or is draining)"
            )
        if len(endpoints) == 1:
            weights = [1.0]
        else:
            weights = [self._effective_capacity(e) for e in endpoints]
        total = sum(weights)
        plan: list[_ShardPlan] = []
        start = 0
        cumulative = 0.0
        for endpoint, weight in zip(endpoints, weights):
            cumulative += weight
            stop = round(batch * cumulative / total)
            if stop > start:
                plan.append(_ShardPlan(endpoint=endpoint, start=start, stop=stop))
                start = stop
        return plan

    # -- tail-latency accounting ----------------------------------------------------

    def _count_tail(self, key: str, metric) -> None:
        """Bump one tail counter in both the registry and the plain mirror."""
        with self._load_lock:
            self._tail[key] += 1
        metric.inc()

    def tail_stats(self) -> dict[str, int]:
        """Cumulative tail-latency counters (hedges, retries, exhaustions)."""
        with self._load_lock:
            return dict(self._tail)

    def _observe_shard_latency(self, seconds: float) -> None:
        with self._load_lock:
            self._shard_latencies.append(float(seconds))

    def hedge_threshold(self) -> float | None:
        """Current straggler threshold in seconds, or None when not hedging.

        The percentile-derived threshold needs :data:`_HEDGE_MIN_SAMPLES`
        observed shard latencies; before that (or with ``hedge_percentile``
        unset) the fixed ``hedge_after_s`` stands alone.  When both apply,
        the larger wins, and every threshold is floored at
        :data:`_HEDGE_FLOOR_S`.
        """
        if self.hedge_after_s is None and self.hedge_percentile is None:
            return None
        adaptive: float | None = None
        if self.hedge_percentile is not None:
            with self._load_lock:
                samples = (
                    list(self._shard_latencies)
                    if len(self._shard_latencies) >= _HEDGE_MIN_SAMPLES
                    else None
                )
            if samples is not None:
                adaptive = float(np.percentile(samples, self.hedge_percentile))
        if adaptive is None:
            if self.hedge_after_s is None:
                return None
            return max(self.hedge_after_s, _HEDGE_FLOOR_S)
        return max(adaptive, self.hedge_after_s or 0.0, _HEDGE_FLOOR_S)

    # -- inference ----------------------------------------------------------------

    def _infer_on_attempt(
        self,
        attempt: _ShardAttempt,
        sub_request: InferenceRequest,
        deadline_s: float | None,
    ) -> InferenceResponse:
        # One shard at a time per endpoint: endpoints own their internal
        # concurrency (pools shard further, pipelined remotes pipeline),
        # and most targets' infer() is not reentrant.  The inflight counter
        # is maintained by plan-time accounting and the attempt lifecycle,
        # not here, so queued-but-unstarted shards count too.
        endpoint = attempt.endpoint
        with endpoint.lock:
            if endpoint.supports_submit:
                # Dispatch through submit() so the in-flight work has a
                # cancellable handle: if this attempt loses a hedge race,
                # cancel() revokes it (frees the server queue slot) and
                # unblocks this worker with CancelledError.
                if deadline_s is not None and endpoint.submit_supports_deadline:
                    future = endpoint.target.submit(
                        sub_request, deadline_s=deadline_s
                    )
                else:
                    future = endpoint.target.submit(sub_request)
                attempt.wire_future = future
                try:
                    return future.result()
                finally:
                    attempt.wire_future = None
            if deadline_s is not None and endpoint.supports_deadline:
                return endpoint.target.infer(sub_request, deadline_s=deadline_s)
            return endpoint.target.infer(sub_request)

    def _cancel_attempt(self, attempt: _ShardAttempt) -> bool:
        """Best-effort revocation of a losing attempt; never raises.

        Still queued in the dispatch pool → the task is cancelled outright;
        returns True so the caller releases its inflight charge (the task
        will never run to release it itself).  Blocked on a cancellable
        endpoint future → that future is cancelled with ``reason="hedge"``,
        which revokes the server-side work and unblocks the worker.
        Anything else (a blocking ``infer`` mid-compute) runs to completion
        and is counted as wasted compute when it lands.
        """
        task = attempt.task
        if task is not None and task.cancel():
            return True
        wire_future = attempt.wire_future
        if wire_future is not None:
            with contextlib.suppress(Exception):
                wire_future.cancel_reason = "hedge"
                wire_future.cancel()
        return False

    def _fallback_for(
        self,
        shed: GatewayEndpoint,
        exclude: Sequence[GatewayEndpoint] = (),
    ) -> GatewayEndpoint | None:
        """The least-backlogged *other* serving endpoint, or None when alone.

        ``exclude`` names further endpoints to avoid — a hedge must not
        land on an endpoint already attempting this very shard.
        """
        excluded = {id(e) for e in exclude}
        excluded.add(id(shed))
        candidates = [
            e for e in self._serving_endpoints() if id(e) not in excluded
        ]
        if not candidates:
            return None
        # Least backlog first; static capacity breaks ties (deterministic:
        # min() keeps the earliest endpoint on full ties).
        return min(candidates, key=lambda e: (self._backlog_of(e), -e.capacity))

    def submit(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> Future:
        """Dispatch one batch without blocking.

        Returns a future resolving to the merged
        :class:`InferenceResponse`.  All endpoint shards go out
        concurrently; completions merge as they stream in, and a shard
        failure resolves the future immediately with an error naming the
        endpoint.  A shard shed by an overloaded endpoint is retried on the
        least-loaded sibling within the request's retry budget (the
        request's own :class:`RetryBudget` when it carries one, else a
        default pooled budget of ``retry_attempts`` hops per planned
        shard), and a straggling shard is hedged onto a sibling once its
        wait crosses :meth:`hedge_threshold`.  ``deadline_s`` propagates to
        every endpoint whose ``infer`` accepts it (remote sessions pass it
        to the server's admission control).  Safe to call again before
        earlier batches resolve — batches pipeline across the endpoints.
        """
        if self._closed:
            raise RuntimeError("gateway is closed")
        plan = self.shard_plan(request.batch_size)
        self._m_requests.inc()
        self._m_shards.inc(len(plan))
        budget = request.retry_budget
        if budget is None:
            budget = RetryBudget(
                1 + self.retry_attempts * len(plan),
                backoff_base_s=self.retry_backoff_base_s,
                backoff_cap_s=self.retry_backoff_cap_s,
            )
            # Shards carry the shared budget so endpoint-internal retries
            # (a PipelinedSession resubmitting after a dead connection)
            # draw from the same per-request pool.
            request = request.with_retry_budget(budget)
        result: Future = Future()
        state = _MergeState(self, request, plan, result)
        # Plan-time load accounting: the primary attempt counts against its
        # endpoint from the moment it is planned (queued work is backlog
        # too); each attempt releases its own charge however it ends —
        # completed, failed, or cancelled before it ever ran.
        with self._load_lock:
            for shard in plan:
                shard.endpoint.inflight += 1
        runs = [
            _ShardRun(
                self,
                shard,
                request.shard(shard.start, shard.stop),
                deadline_s,
                budget,
                Future(),
            )
            for shard in plan
        ]
        state.shard_futures.extend(run.result for run in runs)
        for shard, run in zip(plan, runs):
            run.result.add_done_callback(
                lambda done, run=run: run.abandon() if done.cancelled() else None
            )
            run.result.add_done_callback(
                lambda done, shard=shard: state.shard_done(shard, done)
            )
        for run in runs:
            run.start()
        return result

    def infer(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> InferenceResponse:
        """Shard one request across the endpoints and merge the responses."""
        return self.submit(request, deadline_s=deadline_s).result()

    def infer_many(
        self,
        requests: list[InferenceRequest],
        *,
        deadline_s: float | None = None,
    ) -> list[InferenceResponse]:
        """Pipeline several batches through the endpoints at once.

        The first failure cancels every outstanding future instead of
        abandoning the remaining work in flight on the endpoints.
        """
        futures = [
            self.submit(request, deadline_s=deadline_s) for request in requests
        ]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                if not future.done():
                    future.cancel()
            raise
