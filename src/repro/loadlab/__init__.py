"""The load lab: statistical load generation across serving topologies.

``python -m repro.loadlab sweep`` drives one workload through every layer
of the serving stack — bare session, sharded pool, wire-protocol server,
multi-server gateway, elastic fleet — under open- and closed-loop load
profiles, reduces each cell to throughput / latency / queue-wait / shed /
energy figures, contrasts the topologies with rank-based statistics, and
appends the run to the versioned perf trajectory at
``benchmarks/results/loadlab.json``.

Modules: :mod:`~repro.loadlab.generator` (load loops),
:mod:`~repro.loadlab.topologies` (serving arrangements),
:mod:`~repro.loadlab.stats` (dependency-free rank statistics),
:mod:`~repro.loadlab.sweep` (the matrix driver),
:mod:`~repro.loadlab.persist` (the versioned result schema shared with
the benchmark suite),
:mod:`~repro.loadlab.compare` (run-over-run regression comparison;
``python -m repro.loadlab compare``).
"""

from repro.loadlab.compare import compare_latest_runs, compare_runs
from repro.loadlab.generator import LoadSpec, RequestOutcome, run_load
from repro.loadlab.persist import SCHEMA_VERSION, load_results, persist_result
from repro.loadlab.sweep import persist_sweep, run_cell, run_sweep
from repro.loadlab.topologies import (
    TOPOLOGIES,
    LabWorkload,
    Topology,
    build_topology,
    default_workload,
)

__all__ = [
    "SCHEMA_VERSION",
    "TOPOLOGIES",
    "LabWorkload",
    "LoadSpec",
    "RequestOutcome",
    "Topology",
    "build_topology",
    "compare_latest_runs",
    "compare_runs",
    "default_workload",
    "load_results",
    "persist_result",
    "persist_sweep",
    "run_cell",
    "run_load",
    "run_sweep",
]
