"""Tests for the synthetic datasets and spike statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DATASET_SPECS,
    dataset_spike_statistics,
    make_dataset,
    zero_run_length_histogram,
)
from repro.snn import Dense, Network, Trainer


class TestSyntheticDatasets:
    def test_shapes_and_ranges(self):
        for name, spec in DATASET_SPECS.items():
            data = make_dataset(name, train_samples=20, test_samples=10, seed=0)
            assert data.train_images.shape == (20,) + spec.image_shape
            assert data.test_images.shape == (10,) + spec.image_shape
            assert data.train_images.min() >= 0.0 and data.train_images.max() <= 1.0
            assert set(np.unique(data.train_labels)).issubset(set(range(spec.classes)))

    def test_deterministic_given_seed(self):
        a = make_dataset("mnist", train_samples=12, test_samples=6, seed=5)
        b = make_dataset("mnist", train_samples=12, test_samples=6, seed=5)
        np.testing.assert_allclose(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = make_dataset("mnist", train_samples=12, test_samples=6, seed=1)
        b = make_dataset("mnist", train_samples=12, test_samples=6, seed=2)
        assert not np.allclose(a.train_images, b.train_images)

    def test_mnist_sparser_than_cifar(self):
        mnist = make_dataset("mnist", train_samples=16, test_samples=16, seed=0)
        cifar = make_dataset("cifar10", train_samples=16, test_samples=16, seed=0)
        assert mnist.sparsity() > 0.5
        assert cifar.sparsity() < 0.3
        assert mnist.sparsity() > cifar.sparsity() + 0.3

    def test_flattened_view(self):
        data = make_dataset("svhn", train_samples=8, test_samples=4, seed=0)
        flat = data.flattened()
        assert flat.train_images.shape == (8, 3072)
        assert flat.flat_input_size == 3072

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            make_dataset("imagenet")

    def test_classes_are_separable(self):
        # A linear classifier must beat chance comfortably on the synthetic data.
        data = make_dataset("mnist", train_samples=200, test_samples=60, seed=0)
        rng = np.random.default_rng(0)
        net = Network((784,), [Dense(784, 10, activation=None, use_bias=False, rng=rng)], name="lin")
        x = data.train_images.reshape(200, -1)
        Trainer(learning_rate=0.01, batch_size=32, rng=rng).fit(net, x, data.train_labels, epochs=6)
        test_accuracy = net.accuracy(data.test_images.reshape(60, -1), data.test_labels)
        assert test_accuracy > 0.4  # chance is 0.1


class TestSpikeStatistics:
    def test_zero_packet_fraction_higher_for_sparse_dataset(self):
        mnist = make_dataset("mnist", train_samples=8, test_samples=8, seed=0)
        cifar = make_dataset("cifar10", train_samples=8, test_samples=8, seed=0)
        mnist_stats = dataset_spike_statistics(mnist, timesteps=8, samples=8)
        cifar_stats = dataset_spike_statistics(cifar, timesteps=8, samples=8)
        assert mnist_stats[0].zero_packet_fraction > cifar_stats[0].zero_packet_fraction

    def test_zero_packet_fraction_decreases_with_width(self):
        data = make_dataset("mnist", train_samples=8, test_samples=8, seed=0)
        stats = {s.packet_bits: s.zero_packet_fraction for s in dataset_spike_statistics(data)}
        assert stats[32] >= stats[64] >= stats[128]

    def test_run_length_histogram_counts_runs(self):
        histogram = zero_run_length_histogram(np.array([0, 0, 1, 0, 1, 0, 0, 0]), max_length=8)
        assert histogram[2] == 1
        assert histogram[1] == 1
        assert histogram[3] == 1

    def test_run_length_histogram_clamps_long_runs(self):
        histogram = zero_run_length_histogram(np.zeros(50), max_length=16)
        assert histogram[16] == 1

    def test_validation(self):
        data = make_dataset("mnist", train_samples=4, test_samples=4, seed=0)
        with pytest.raises(ValueError):
            dataset_spike_statistics(data, timesteps=0)
        with pytest.raises(ValueError):
            zero_run_length_histogram(np.zeros(4), max_length=0)
