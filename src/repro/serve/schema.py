"""Serializable request/response schema of the serving API.

A server, queue worker or sweep harness needs results that can cross a
process boundary.  :class:`InferenceRequest` and :class:`InferenceResponse`
are the wire-level counterparts of the in-memory simulation types: plain
dataclasses whose :meth:`to_dict` / :meth:`from_dict` round-trip losslessly
through JSON (Python's ``json`` serialises floats with shortest round-trip
precision), carrying :class:`~repro.core.stats.EventCounters` and
:class:`~repro.energy.model.EnergyReport` via their own dict codecs.

The schema is versioned (``SCHEMA_VERSION``) so a deserialiser can reject
payloads written by an incompatible producer instead of mis-reading them.

This module also defines the *wire envelope* the chip server and its clients
exchange.  Protocol version 2 adds explicit ``op``/``reply`` framing and
optional request ``id``\\ s so several requests can be in flight on one
connection; version-1 peers (no ``v``, no ``id``) remain fully supported —
the server answers them in arrival order, exactly as before.

Protocol **version 3** adds a *binary frame* carrier for the very same
envelopes: a fixed little-endian header (:data:`FRAME_MAGIC`, metadata
length, payload length), a compact-JSON metadata section holding the
envelope with its large arrays replaced by indexed placeholders, and a raw
payload of little-endian ``float64`` / ``int64`` array bytes (``inputs``,
``labels``, ``predictions``, ``spike_counts``).  Both carriers share one TCP
connection: a JSON line starts with a printable byte and ends in ``\\n``,
while a frame starts with the magic byte ``0x93`` (a UTF-8 continuation
byte, never the first byte of a JSON line), so a reader distinguishes them
by peeking one byte.  Frames are **bit-identical** to the JSON carrier —
``float64``/``int64`` values cross the wire as their raw bytes, which is
*easier* to keep exact than JSON's shortest-round-trip text — and version
negotiation happens at the envelope level: every reply envelope carries the
sender's ``v``, so a client learns the server's version from its first
(JSON) reply and only then switches to frames, while v1/v2 peers keep
speaking JSON lines unchanged.

The version-2 envelope additionally carries the admission-control surface
(all optional, so v1/v2 peers that ignore it are unchanged):

* an ``infer`` request may set ``deadline_s`` (positive seconds); the server
  rejects the request once that much time has passed before dispatch;
* a ``cancel`` request (``{"op": "cancel", "target": <id>}``) removes the
  still-queued ``infer`` tagged ``target`` on the same connection;
* error replies may carry a machine-readable ``code`` —
  :data:`ERROR_OVERLOADED`, :data:`ERROR_DEADLINE_EXCEEDED`,
  :data:`ERROR_CANCELLED` or :data:`ERROR_DRAINING` — next to the
  human-readable ``error`` message, so clients and the gateway can react
  (retry elsewhere, surface a timeout) without parsing prose;
* a ``drain`` request (``{"op": "drain"}``) puts the server into graceful
  retirement: new ``infer`` requests are rejected with
  ``code == "draining"``, already-admitted work runs to completion with
  replies delivered, and the server exits once its queue is empty.  The op
  is idempotent and available to every envelope version.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.stats import EventCounters
from repro.energy.model import EnergyReport
from repro.serve.retry import RetryBudget

__all__ = [
    "ERROR_CANCELLED",
    "ERROR_DEADLINE_EXCEEDED",
    "ERROR_DRAINING",
    "ERROR_OVERLOADED",
    "FRAME_HEADER_SIZE",
    "FRAME_MAGIC",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "SCHEMA_VERSION",
    "InferenceRequest",
    "InferenceResponse",
    "decode_frame",
    "decode_frame_payload",
    "encode_frame",
    "error_envelope",
    "parse_envelope",
    "parse_frame_header",
    "reply_envelope",
    "request_envelope",
]

#: Version tag embedded in every serialised response.
SCHEMA_VERSION = 1

#: Wire-envelope version: 2 adds request ids and ``op``/``reply`` framing,
#: 3 adds the binary frame carrier (:func:`encode_frame`).  Version-1
#: envelopes (no ``v`` field) are still accepted everywhere, and every
#: version may arrive on the JSON line carrier.
PROTOCOL_VERSION = 3

#: Structured error codes carried in error replies (the ``code`` field).
#: The request was shed by the server's admission control (queue full).
ERROR_OVERLOADED = "overloaded"
#: The request's ``deadline_s`` expired before the server dispatched it.
ERROR_DEADLINE_EXCEEDED = "deadline_exceeded"
#: The request was cancelled (a ``cancel`` op, or the client went away).
ERROR_CANCELLED = "cancelled"
#: The server is draining (graceful retirement): it no longer admits new
#: ``infer`` requests but still finishes and answers already-admitted work.
ERROR_DRAINING = "draining"


# -- wire envelope ------------------------------------------------------------------


def request_envelope(
    op: str,
    *,
    request_id: object = None,
    version: int | None = None,
    **fields: object,
) -> dict[str, object]:
    """Build one request envelope of the wire protocol.

    ``request_id`` (any JSON scalar) tags the request so its reply can be
    matched out of order; omitting it produces a version-1 style envelope
    whose reply arrives in order on the connection.  ``version`` caps the
    declared protocol version — a client that negotiated down to an older
    server declares the *common* version so the peer's envelope check
    accepts it.
    """
    envelope: dict[str, object] = {
        "v": PROTOCOL_VERSION if version is None else int(version),
        "op": op,
    }
    if request_id is not None:
        envelope["id"] = request_id
    envelope.update(fields)
    return envelope


def reply_envelope(
    op: object, result: dict[str, object], *, request_id: object = None
) -> dict[str, object]:
    """Build a success reply, echoing the request's ``op`` and ``id``."""
    envelope: dict[str, object] = {"ok": True, "v": PROTOCOL_VERSION, "reply": op}
    if request_id is not None:
        envelope["id"] = request_id
    envelope.update(result)
    return envelope


def error_envelope(
    message: str,
    *,
    op: object = None,
    request_id: object = None,
    code: str | None = None,
) -> dict[str, object]:
    """Build an error reply (every failure becomes a reply, never a dropped line).

    ``code`` attaches a machine-readable error code (:data:`ERROR_OVERLOADED`,
    :data:`ERROR_DEADLINE_EXCEEDED`, :data:`ERROR_CANCELLED`) so clients can
    branch on the failure class without parsing the message text.
    """
    envelope: dict[str, object] = {
        "ok": False,
        "v": PROTOCOL_VERSION,
        "reply": op,
        "error": message,
    }
    if code is not None:
        envelope["code"] = code
    if request_id is not None:
        envelope["id"] = request_id
    return envelope


def parse_envelope(line: str) -> dict[str, object]:
    """Parse one wire line into an envelope mapping.

    Raises :class:`ValueError` on malformed JSON, non-object lines and
    envelope versions newer than this build understands, so the server can
    turn every protocol violation into an error reply.
    """
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed request line: {exc}") from None
    if not isinstance(message, dict):
        raise ValueError("request line must be a JSON object")
    return validate_envelope(message)


def validate_envelope(message: dict[str, object]) -> dict[str, object]:
    """Apply the envelope version bounds to an already-decoded mapping.

    Shared by both carriers: :func:`parse_envelope` (JSON lines) and frame
    readers (:func:`decode_frame_payload` output) funnel through the same
    check, so a peer newer than this build fails identically either way.
    """
    version = message.get("v", 1)
    if not isinstance(version, int) or not 1 <= version <= PROTOCOL_VERSION:
        raise ValueError(
            f"unsupported protocol version {version!r} "
            f"(this build speaks 1..{PROTOCOL_VERSION})"
        )
    return message


# -- binary frame carrier (protocol v3) ---------------------------------------------

#: First bytes of every binary frame.  ``0x93`` is a UTF-8 continuation
#: byte, so it can never start a JSON line — one peeked byte tells a reader
#: which carrier the next message uses.
FRAME_MAGIC = b"\x93RF3"

#: Fixed frame header: magic, metadata length (u32), payload length (u64),
#: all little-endian.  The metadata section (compact JSON) and the raw array
#: payload follow back to back.
_FRAME_HEADER = struct.Struct("<4sIQ")
FRAME_HEADER_SIZE = _FRAME_HEADER.size

#: Largest accepted frame (header + metadata + payload).  Mirrors the
#: server's JSON line limit: big enough for production batches, small
#: enough to bound a misbehaving peer.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Array dtypes allowed on the wire: everything numeric crosses as either
#: little-endian float64 or little-endian int64 (bit-identical to the
#: in-memory arrays; JSON text round trip is the *harder* path to keep
#: exact).
_FRAME_DTYPES = {"<f8": np.dtype("<f8"), "<i8": np.dtype("<i8")}

#: Reserved placeholder key marking an extracted array in frame metadata.
_ARRAY_KEY = "__nd__"


def _wire_dtype(array: np.ndarray) -> np.dtype:
    """The on-wire dtype for an array (floats -> ``<f8``, ints -> ``<i8``)."""
    if array.dtype.kind == "f":
        return _FRAME_DTYPES["<f8"]
    if array.dtype.kind in "iub":
        return _FRAME_DTYPES["<i8"]
    raise ValueError(
        f"cannot carry dtype {array.dtype} in a binary frame (float64/int64 "
        f"payloads only)"
    )


def _extract_arrays(
    value: object, arrays: list[np.ndarray], descriptors: list[dict[str, object]]
) -> object:
    """Replace every ndarray in a tree with an indexed placeholder.

    The returned tree is pure JSON; extracted arrays are appended (as
    C-contiguous little-endian float64/int64) with a matching descriptor.
    """
    if isinstance(value, np.ndarray):
        wire = np.ascontiguousarray(value, dtype=_wire_dtype(value))
        arrays.append(wire)
        descriptors.append(
            {
                "dtype": wire.dtype.str,
                "shape": list(wire.shape),
            }
        )
        return {_ARRAY_KEY: len(arrays) - 1}
    if isinstance(value, dict):
        if _ARRAY_KEY in value:
            raise ValueError(
                f"frame metadata may not contain the reserved key {_ARRAY_KEY!r}"
            )
        return {
            key: _extract_arrays(item, arrays, descriptors)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_extract_arrays(item, arrays, descriptors) for item in value]
    if isinstance(value, np.generic):  # numpy scalar leaked into metadata
        return value.item()
    return value


def _restore_arrays(value: object, arrays: list[np.ndarray]) -> object:
    """Inverse of :func:`_extract_arrays`: placeholders become ndarrays."""
    if isinstance(value, dict):
        if set(value) == {_ARRAY_KEY}:
            index = value[_ARRAY_KEY]
            if not isinstance(index, int) or not 0 <= index < len(arrays):
                raise ValueError(
                    f"frame metadata references array {index!r} but the frame "
                    f"carries {len(arrays)}"
                )
            return arrays[index]
        return {key: _restore_arrays(item, arrays) for key, item in value.items()}
    if isinstance(value, list):
        return [_restore_arrays(item, arrays) for item in value]
    return value


def _pad8(n: int) -> int:
    """Round up to the frame's 8-byte array alignment."""
    return (n + 7) & ~7


def encode_frame(
    envelope: dict[str, object], *, buffer: bytearray | None = None
) -> bytes | memoryview:
    """Serialise one envelope to a binary frame.

    Every :class:`numpy.ndarray` anywhere in the envelope ships as raw
    little-endian bytes in the payload section (8-byte aligned); the rest of
    the envelope becomes the compact-JSON metadata section.  ``buffer``
    (optional) is an encode buffer reused across calls — the frame is built
    in place and returned as a :class:`memoryview` of it, so steady-state
    encoding allocates nothing proportional to the batch; pass ``None`` to
    get an independent :class:`bytes`.  A reused buffer must not be handed
    to a consumer that keeps the reference past the next encode (write it to
    a blocking socket, then reuse).
    """
    arrays: list[np.ndarray] = []
    descriptors: list[dict[str, object]] = []
    stripped = _extract_arrays(envelope, arrays, descriptors)
    offset = 0
    for descriptor, array in zip(descriptors, arrays):
        descriptor["offset"] = offset
        offset += _pad8(array.nbytes)
    meta = json.dumps(
        {"envelope": stripped, "arrays": descriptors}, separators=(",", ":")
    ).encode("utf-8")
    total = FRAME_HEADER_SIZE + len(meta) + offset
    out = bytearray(total) if buffer is None else buffer
    if len(out) < total:
        out.extend(bytes(total - len(out)))
    _FRAME_HEADER.pack_into(out, 0, FRAME_MAGIC, len(meta), offset)
    start = FRAME_HEADER_SIZE
    out[start : start + len(meta)] = meta
    start += len(meta)
    for descriptor, array in zip(descriptors, arrays):
        at = start + descriptor["offset"]
        out[at : at + array.nbytes] = array.tobytes()
        pad = _pad8(array.nbytes) - array.nbytes
        if pad:
            out[at + array.nbytes : at + array.nbytes + pad] = bytes(pad)
    if buffer is None:
        return bytes(out)
    return memoryview(out)[:total]


def parse_frame_header(header: bytes) -> tuple[int, int]:
    """Validate a frame header, returning ``(meta_len, payload_len)``.

    Raises :class:`ValueError` on a bad magic or a frame larger than
    :data:`MAX_FRAME_BYTES`, so wire readers can turn header corruption into
    a structured error reply instead of mis-framing the stream.
    """
    if len(header) != FRAME_HEADER_SIZE:
        raise ValueError(
            f"truncated frame header: got {len(header)} of "
            f"{FRAME_HEADER_SIZE} bytes"
        )
    magic, meta_len, payload_len = _FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise ValueError(
            f"bad frame magic {magic!r} (expected {FRAME_MAGIC!r}); the "
            f"connection is desynchronised"
        )
    total = FRAME_HEADER_SIZE + meta_len + payload_len
    if total > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {total} bytes exceeds the {MAX_FRAME_BYTES} byte limit"
        )
    return int(meta_len), int(payload_len)


def decode_frame_payload(meta: bytes, payload: bytes | memoryview) -> dict[str, object]:
    """Rebuild an envelope from a frame's metadata + payload sections.

    Array views are created zero-copy over ``payload`` (pass a
    :class:`memoryview` to avoid even the slice copies).  Every structural
    violation — malformed metadata JSON, unknown dtypes, descriptors
    pointing outside the payload — raises :class:`ValueError` with a message
    naming the problem, exactly like :func:`parse_envelope` does for JSON
    lines.
    """
    try:
        decoded = json.loads(bytes(meta).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed frame metadata: {exc}") from None
    if (
        not isinstance(decoded, dict)
        or not isinstance(decoded.get("envelope"), dict)
        or not isinstance(decoded.get("arrays"), list)
    ):
        raise ValueError(
            "frame metadata must be a JSON object with 'envelope' and "
            "'arrays' sections"
        )
    view = memoryview(payload)
    arrays: list[np.ndarray] = []
    for index, descriptor in enumerate(decoded["arrays"]):
        if not isinstance(descriptor, dict):
            raise ValueError(f"frame array descriptor {index} is not an object")
        dtype = _FRAME_DTYPES.get(descriptor.get("dtype"))
        shape = descriptor.get("shape")
        offset = descriptor.get("offset")
        if dtype is None:
            raise ValueError(
                f"frame array {index} has unsupported dtype "
                f"{descriptor.get('dtype')!r} (expected one of "
                f"{sorted(_FRAME_DTYPES)})"
            )
        if (
            not isinstance(shape, list)
            or not all(isinstance(dim, int) and dim >= 0 for dim in shape)
            or not isinstance(offset, int)
            or offset < 0
        ):
            raise ValueError(f"frame array {index} has a malformed descriptor")
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(view):
            raise ValueError(
                f"frame array {index} spans [{offset}, {offset + nbytes}) but "
                f"the payload holds {len(view)} bytes"
            )
        arrays.append(
            np.frombuffer(view[offset : offset + nbytes], dtype=dtype).reshape(shape)
        )
    return _restore_arrays(decoded["envelope"], arrays)


def decode_frame(frame: bytes | memoryview) -> dict[str, object]:
    """Rebuild an envelope from one complete frame (header included)."""
    view = memoryview(frame)
    meta_len, payload_len = parse_frame_header(bytes(view[:FRAME_HEADER_SIZE]))
    if len(view) < FRAME_HEADER_SIZE + meta_len + payload_len:
        raise ValueError(
            f"truncated frame: header declares "
            f"{FRAME_HEADER_SIZE + meta_len + payload_len} bytes, got {len(view)}"
        )
    meta = bytes(view[FRAME_HEADER_SIZE : FRAME_HEADER_SIZE + meta_len])
    payload = view[
        FRAME_HEADER_SIZE + meta_len : FRAME_HEADER_SIZE + meta_len + payload_len
    ]
    return decode_frame_payload(meta, payload)


def _as_batch(inputs: np.ndarray) -> np.ndarray:
    """Coerce request inputs to a flattened ``(batch, features)`` float array.

    Degenerate inputs are rejected here (the reshape below cannot infer a
    feature axis for them anyway): a request must carry at least one sample
    and each sample at least one feature.
    """
    x = np.asarray(inputs, dtype=float)
    if x.ndim == 1:
        # An empty 1-D input is an empty batch, not a single empty sample.
        x = x.reshape(0, 0) if x.size == 0 else x[np.newaxis]
    if x.shape[0] == 0:
        raise ValueError(
            "request batch is empty: inputs must contain at least one sample"
        )
    if x.size == 0:
        raise ValueError(
            "request samples are empty: each sample needs at least one feature"
        )
    return x.reshape(x.shape[0], -1)


def _load_payload(payload: str, what: str) -> dict[str, object]:
    """Parse a JSON payload into a mapping, raising :class:`ValueError` on junk.

    Wire-facing consumers (the chip server, queue workers) must be able to
    treat every deserialisation failure uniformly, so malformed JSON and
    non-object payloads surface as ``ValueError`` like every other schema
    violation rather than leaking :class:`json.JSONDecodeError`.
    """
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed {what} JSON payload: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError(
            f"{what} payload must be a JSON object, got {type(data).__name__}"
        )
    return data


def _check_fields(
    data: dict[str, object], *, what: str, required: set[str], optional: set[str]
) -> None:
    """Reject payloads with missing required or unknown fields (schema drift)."""
    missing = required - set(data)
    if missing:
        raise ValueError(f"{what} payload missing required fields: {sorted(missing)}")
    unknown = set(data) - required - optional
    if unknown:
        raise ValueError(f"{what} payload has unknown fields: {sorted(unknown)}")


@dataclass(frozen=True)
class InferenceRequest:
    """One batch of inputs for a :class:`~repro.serve.ChipSession`.

    Attributes
    ----------
    inputs:
        Intensity array of shape ``(batch, ...)`` (a single 1-D sample is
        promoted to a batch of one); trailing axes are flattened.
    labels:
        Optional integer labels; when present the response carries accuracy.
    timesteps:
        Per-request override of the session's rate-coding window.
    sample_offset:
        Absolute index of ``inputs[0]`` within the logical batch.  Used by
        :class:`~repro.serve.ChipPool` so a shard's stochastic encoding is
        identical to the same slice of a single full-batch request.
    retry_budget:
        Optional :class:`~repro.serve.retry.RetryBudget` bounding the total
        retries this request (and every shard of it) may consume across
        layers — gateway shed retries, hedges gone wrong, client
        reconnects.  Sender-side policy only: never serialized, and
        :meth:`shard` hands every shard the *same* budget object so the
        accounting is per request, not per shard.
    """

    inputs: np.ndarray
    labels: np.ndarray | None = None
    timesteps: int | None = None
    sample_offset: int = 0
    retry_budget: RetryBudget | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.timesteps is not None and self.timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {self.timesteps}")
        if self.sample_offset < 0:
            raise ValueError(f"sample_offset must be >= 0, got {self.sample_offset}")
        batch = self.batch  # raises on empty batches / featureless samples
        if self.labels is not None and len(np.asarray(self.labels)) != batch.shape[0]:
            raise ValueError(
                f"labels length {len(np.asarray(self.labels))} does not match "
                f"batch size {batch.shape[0]}"
            )

    @property
    def batch(self) -> np.ndarray:
        """The inputs as a flattened ``(batch, features)`` array."""
        return _as_batch(self.inputs)

    @property
    def batch_size(self) -> int:
        """Number of samples in the request."""
        return self.batch.shape[0]

    def shard(self, start: int, stop: int) -> "InferenceRequest":
        """The sub-request covering samples ``[start, stop)`` of this batch."""
        x = self.batch
        labels = None
        if self.labels is not None:
            labels = np.asarray(self.labels)[start:stop]
        return replace(
            self,
            inputs=x[start:stop],
            labels=labels,
            sample_offset=self.sample_offset + start,
        )

    def with_retry_budget(self, budget: RetryBudget | None) -> "InferenceRequest":
        """A copy of this request carrying ``budget`` (shared by all its shards)."""
        return replace(self, retry_budget=budget)

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible representation."""
        return {
            "schema_version": SCHEMA_VERSION,
            "inputs": self.batch.tolist(),
            "labels": None if self.labels is None else np.asarray(self.labels).tolist(),
            "timesteps": self.timesteps,
            "sample_offset": self.sample_offset,
        }

    def to_wire_dict(self) -> dict[str, object]:
        """Frame-carrier representation: same fields, arrays stay ndarrays.

        :func:`encode_frame` ships the arrays as raw little-endian bytes, so
        this codec never pays a per-float text conversion.  The key set is
        identical to :meth:`to_dict` and :meth:`from_dict` reads both.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "inputs": self.batch,
            "labels": (
                None if self.labels is None else np.asarray(self.labels, dtype=np.int64)
            ),
            "timesteps": self.timesteps,
            "sample_offset": self.sample_offset,
        }

    def to_frame(self, *, buffer: bytearray | None = None) -> bytes | memoryview:
        """Serialise to one standalone binary frame (see :func:`encode_frame`)."""
        return encode_frame(self.to_wire_dict(), buffer=buffer)

    @classmethod
    def from_frame(cls, frame: bytes | memoryview) -> "InferenceRequest":
        """Rebuild a request from a frame produced by :meth:`to_frame`."""
        return cls.from_dict(decode_frame(frame))

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "InferenceRequest":
        """Rebuild a request produced by :meth:`to_dict`.

        Payloads missing ``inputs`` or carrying fields this build does not
        know are rejected with a :class:`ValueError`, so a drifted producer
        fails loudly instead of being silently mis-read.
        """
        _check_version(data)
        _check_fields(
            data,
            what="request",
            required={"inputs"},
            optional={"schema_version", "labels", "timesteps", "sample_offset"},
        )
        labels = data.get("labels")
        timesteps = data.get("timesteps")
        return cls(
            inputs=np.asarray(data["inputs"], dtype=float),
            labels=None if labels is None else np.asarray(labels, dtype=int),
            timesteps=None if timesteps is None else int(timesteps),
            sample_offset=int(data.get("sample_offset", 0)),
        )

    def to_json(self) -> str:
        """Serialise to a JSON string (the chip server's wire format)."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "InferenceRequest":
        """Deserialise from a JSON string; malformed JSON is a ValueError."""
        return cls.from_dict(_load_payload(payload, "request"))


@dataclass(frozen=True)
class InferenceResponse:
    """Outcome of one served inference batch.

    Mirrors :class:`~repro.core.simulator.ChipRunResult` (predictions, spike
    counts, accuracy, counters, energy) plus the serving metadata a client
    needs: the executing backend, the batch size and how many pool workers
    the batch was sharded across.
    """

    predictions: np.ndarray
    spike_counts: np.ndarray
    accuracy: float | None
    counters: EventCounters
    energy: EnergyReport
    timesteps: int
    backend: str
    batch_size: int
    jobs: int = 1
    metadata: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible representation (lossless float round trip)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "predictions": self.predictions.tolist(),
            "spike_counts": self.spike_counts.tolist(),
            "accuracy": self.accuracy,
            "counters": self.counters.as_dict(),
            "energy": self.energy.to_dict(),
            "timesteps": self.timesteps,
            "backend": self.backend,
            "batch_size": self.batch_size,
            "jobs": self.jobs,
            "metadata": dict(self.metadata),
        }

    def to_wire_dict(self) -> dict[str, object]:
        """Frame-carrier representation: the big arrays stay ndarrays.

        ``predictions`` and ``spike_counts`` — the only payloads that scale
        with the batch — ship as raw bytes through :func:`encode_frame`; the
        scalar-sized counters/energy breakdowns stay compact JSON, whose
        shortest-round-trip float printing is already lossless.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "predictions": np.asarray(self.predictions, dtype=np.int64),
            "spike_counts": np.asarray(self.spike_counts, dtype=np.float64),
            "accuracy": self.accuracy,
            "counters": self.counters.as_dict(),
            "energy": self.energy.to_dict(),
            "timesteps": self.timesteps,
            "backend": self.backend,
            "batch_size": self.batch_size,
            "jobs": self.jobs,
            "metadata": dict(self.metadata),
        }

    def to_frame(self, *, buffer: bytearray | None = None) -> bytes | memoryview:
        """Serialise to one standalone binary frame (see :func:`encode_frame`)."""
        return encode_frame(self.to_wire_dict(), buffer=buffer)

    @classmethod
    def from_frame(cls, frame: bytes | memoryview) -> "InferenceResponse":
        """Rebuild a response from a frame produced by :meth:`to_frame`."""
        return cls.from_dict(decode_frame(frame))

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "InferenceResponse":
        """Rebuild a response produced by :meth:`to_dict`.

        Like :meth:`InferenceRequest.from_dict`, missing required fields and
        unknown fields raise :class:`ValueError`.
        """
        _check_version(data)
        _check_fields(
            data,
            what="response",
            required={
                "predictions",
                "spike_counts",
                "counters",
                "energy",
                "timesteps",
                "backend",
                "batch_size",
            },
            optional={"schema_version", "accuracy", "jobs", "metadata"},
        )
        accuracy = data.get("accuracy")
        return cls(
            predictions=np.asarray(data["predictions"], dtype=int),
            spike_counts=np.asarray(data["spike_counts"], dtype=float),
            accuracy=None if accuracy is None else float(accuracy),
            counters=EventCounters.from_dict(data["counters"]),
            energy=EnergyReport.from_dict(data["energy"]),
            timesteps=int(data["timesteps"]),
            backend=str(data["backend"]),
            batch_size=int(data["batch_size"]),
            jobs=int(data.get("jobs", 1)),
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "InferenceResponse":
        """Deserialise from a JSON string; malformed JSON is a ValueError."""
        return cls.from_dict(_load_payload(payload, "response"))

    def as_run_result(self):
        """Convert to the legacy :class:`~repro.core.simulator.ChipRunResult`."""
        from repro.core.simulator import ChipRunResult

        return ChipRunResult(
            predictions=self.predictions,
            spike_counts=self.spike_counts,
            accuracy=self.accuracy,
            counters=self.counters,
            energy=self.energy,
            timesteps=self.timesteps,
            backend=self.backend,
        )


def _check_version(data: dict[str, object]) -> None:
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {version!r} (this build reads {SCHEMA_VERSION})"
        )
