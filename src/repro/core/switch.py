"""The programmable switch of a NeuroCell's local interconnect.

A NeuroCell couples its mPEs with a grid of programmable switches (Fig. 6 of
the paper).  Each switch connects to its four neighbouring mPEs and has
dedicated links to the switches in its own row and column, so any two mPEs in
a NeuroCell communicate in one hop through at most two switches.  Each
input/output line carries data + address buffers, and the switch arbitrates
between senders according to its (static) configuration.

For energy efficiency every switch carries *zero-check logic*: an incoming
spike packet whose bits are all zero is dropped instead of forwarded
(Section 3.2), which is the architectural hook for SNN event-drivenness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.buffers import SpikePacket

__all__ = ["SwitchPort", "ProgrammableSwitch"]


@dataclass(frozen=True)
class SwitchPort:
    """One input/output line of a switch (connected to an mPE or a peer switch)."""

    name: str
    kind: str  # "mpe" or "switch"

    def __post_init__(self) -> None:
        if self.kind not in ("mpe", "switch"):
            raise ValueError(f"port kind must be 'mpe' or 'switch', got {self.kind!r}")


class ProgrammableSwitch:
    """A configurable packet switch with zero-check gating.

    Parameters
    ----------
    switch_id:
        Identifier within the NeuroCell (row-major index of the switch grid).
    zero_check_enabled:
        When true (the architecture's event-driven mode) all-zero packets are
        suppressed instead of forwarded.
    """

    def __init__(self, switch_id: str, zero_check_enabled: bool = True):
        self.switch_id = switch_id
        self.zero_check_enabled = zero_check_enabled
        self._ports: dict[str, SwitchPort] = {}
        self._routes: dict[str, str] = {}
        self.forwarded_packets = 0
        self.suppressed_packets = 0
        self.zero_checks = 0
        self.arbitration_conflicts = 0

    # -- configuration -------------------------------------------------------------

    def attach_port(self, port: SwitchPort) -> None:
        """Register an input/output line."""
        if port.name in self._ports:
            raise ValueError(f"port {port.name!r} already attached to switch {self.switch_id}")
        self._ports[port.name] = port

    def configure_route(self, destination_prefix: str, port_name: str) -> None:
        """Route packets whose target starts with ``destination_prefix`` to a port."""
        if port_name not in self._ports:
            raise KeyError(f"switch {self.switch_id} has no port {port_name!r}")
        self._routes[destination_prefix] = port_name

    @property
    def ports(self) -> tuple[SwitchPort, ...]:
        """Attached ports."""
        return tuple(self._ports.values())

    # -- datapath -----------------------------------------------------------------------

    def route_port_for(self, target: str) -> str | None:
        """Resolve the output port for a target address (longest-prefix match)."""
        best: str | None = None
        best_len = -1
        for prefix, port in self._routes.items():
            if target.startswith(prefix) and len(prefix) > best_len:
                best, best_len = port, len(prefix)
        return best

    def forward(self, packet: SpikePacket) -> tuple[str | None, bool]:
        """Forward one packet.

        Returns ``(output_port, delivered)``.  A suppressed (all-zero) packet
        returns ``(None, False)``; an unroutable packet raises ``KeyError``.
        """
        if self.zero_check_enabled:
            self.zero_checks += 1
            if packet.is_zero:
                self.suppressed_packets += 1
                return None, False
        port = self.route_port_for(packet.target)
        if port is None:
            raise KeyError(
                f"switch {self.switch_id}: no route for target {packet.target!r} "
                f"(routes: {sorted(self._routes)})"
            )
        self.forwarded_packets += 1
        return port, True

    def forward_many(self, packets: list[SpikePacket]) -> list[tuple[SpikePacket, str]]:
        """Forward a burst of packets, recording arbitration conflicts.

        Packets competing for the same output port in one burst are all
        delivered (they serialise over multiple cycles) but each extra packet
        on a port counts as an arbitration conflict, which the latency model
        can convert into stall cycles.
        """
        delivered: list[tuple[SpikePacket, str]] = []
        port_usage: dict[str, int] = {}
        for packet in packets:
            port, ok = self.forward(packet)
            if not ok or port is None:
                continue
            port_usage[port] = port_usage.get(port, 0) + 1
            if port_usage[port] > 1:
                self.arbitration_conflicts += 1
            delivered.append((packet, port))
        return delivered

    def reset_counters(self) -> None:
        """Reset all event counters."""
        self.forwarded_packets = 0
        self.suppressed_packets = 0
        self.zero_checks = 0
        self.arbitration_conflicts = 0
