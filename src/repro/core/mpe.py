"""The macro Processing Engine (mPE) — RESPARC's reconfigurable compute unit.

An mPE (Fig. 4 of the paper) bundles a small number of MCAs (four in the
published configuration) with their neurons, per-MCA input/output/target
buffers, a Local Control Unit that sequences evaluations and time-multiplexed
integrations, and a Current Control Unit that exchanges analog partial sums
with neighbouring mPEs when a neuron's fan-in spans crossbars.

The structural simulator programs weight blocks ("tiles") into the mPE's
MCAs and calls :meth:`MacroProcessingEngine.evaluate_tile` per timestep; all
buffer/control activity is counted on the way so the energy charged by the
structural model matches the analytical model's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.buffers import SpikeBuffer, SpikePacket, TargetBuffer
from repro.core.control import CurrentControlUnit, LocalControlUnit
from repro.crossbar.mca import CrossbarArray, CrossbarConfig

__all__ = ["TileAssignment", "MacroProcessingEngine"]


@dataclass(frozen=True)
class TileAssignment:
    """Describes the weight block a physical MCA holds.

    Attributes
    ----------
    layer_index:
        Index of the network layer this tile belongs to.
    row_start / row_stop:
        Input-neuron range (rows of the layer's weight matrix).
    column_start / column_stop:
        Output-neuron range (columns of the layer's weight matrix).
    """

    layer_index: int
    row_start: int
    row_stop: int
    column_start: int
    column_stop: int

    @property
    def rows(self) -> int:
        """Rows occupied by the tile."""
        return self.row_stop - self.row_start

    @property
    def columns(self) -> int:
        """Columns occupied by the tile."""
        return self.column_stop - self.column_start


class MacroProcessingEngine:
    """One mPE: MCAs + buffers + local control + current control."""

    def __init__(
        self,
        mpe_id: str,
        crossbar_config: CrossbarConfig,
        mcas_per_mpe: int = 4,
        packet_bits: int = 32,
        rng: np.random.Generator | None = None,
    ):
        if mcas_per_mpe <= 0:
            raise ValueError(f"mcas_per_mpe must be positive, got {mcas_per_mpe}")
        self.mpe_id = mpe_id
        self.packet_bits = packet_bits
        self.crossbar_config = crossbar_config
        self.mcas: list[CrossbarArray] = [
            CrossbarArray(crossbar_config, rng=rng) for _ in range(mcas_per_mpe)
        ]
        self.assignments: list[TileAssignment | None] = [None] * mcas_per_mpe
        self.ibuffs = [SpikeBuffer(f"{mpe_id}.ibuff{i}") for i in range(mcas_per_mpe)]
        self.obuffs = [SpikeBuffer(f"{mpe_id}.obuff{i}") for i in range(mcas_per_mpe)]
        self.tbuffs = [TargetBuffer(f"{mpe_id}.tbuff{i}") for i in range(mcas_per_mpe)]
        self.control = LocalControlUnit(mpe_id, mcas_per_mpe)
        self.ccu = CurrentControlUnit(mpe_id)
        self.neuron_integrations = 0

    # -- configuration ---------------------------------------------------------------

    @property
    def free_mca_count(self) -> int:
        """MCAs not yet holding a tile."""
        return sum(1 for a in self.assignments if a is None)

    def program_tile(
        self,
        assignment: TileAssignment,
        weights: np.ndarray,
        targets: list[str] | None = None,
        scale: float | None = None,
    ) -> int:
        """Program a weight block into the next free MCA.

        Returns the MCA index used.  Raises when the mPE is full or the block
        does not fit the crossbar geometry.
        """
        if weights.shape != (assignment.rows, assignment.columns):
            raise ValueError(
                f"weight block shape {weights.shape} does not match assignment "
                f"{(assignment.rows, assignment.columns)}"
            )
        for index, existing in enumerate(self.assignments):
            if existing is None:
                self.mcas[index].program(weights, scale=scale)
                self.assignments[index] = assignment
                if targets:
                    self.tbuffs[index].configure(targets)
                return index
        raise RuntimeError(f"{self.mpe_id}: no free MCA for layer {assignment.layer_index}")

    def tiles_for_layer(self, layer_index: int) -> list[int]:
        """MCA indices holding tiles of a given layer."""
        return [
            i
            for i, a in enumerate(self.assignments)
            if a is not None and a.layer_index == layer_index
        ]

    # -- execution -----------------------------------------------------------------------

    def deliver_packets(self, mca_index: int, packets: list[SpikePacket]) -> None:
        """Push incoming spike packets into an MCA's input buffer."""
        for packet in packets:
            self.ibuffs[mca_index].push(packet)

    def evaluate_tile(self, mca_index: int, input_spikes: np.ndarray) -> np.ndarray:
        """Evaluate one programmed MCA on its slice of the layer input.

        ``input_spikes`` is the full input vector of the layer; the method
        slices the rows this tile consumes, runs the analog evaluation and
        returns the weighted sums of the tile's output columns.
        """
        assignment = self.assignments[mca_index]
        if assignment is None:
            raise RuntimeError(f"{self.mpe_id}: MCA {mca_index} has no programmed tile")
        block = np.zeros(self.crossbar_config.rows)
        rows = input_spikes[assignment.row_start : assignment.row_stop]
        block[: assignment.rows] = rows

        # Consume buffered input packets (functional bookkeeping of iBUFF reads).
        while not self.ibuffs[mca_index].is_empty:
            self.ibuffs[mca_index].pop()

        self.control.schedule_evaluation(mca_index, multiplex_degree=1)
        evaluation = self.mcas[mca_index].evaluate(block)
        self.control.complete_integration(mca_index)
        self.neuron_integrations += assignment.columns
        return evaluation.weighted_sums[: assignment.columns]

    def emit_output(self, mca_index: int, spikes: np.ndarray) -> list[SpikePacket]:
        """Packetise output spikes through oBUFF/tBUFF and return the packets."""
        targets = self.tbuffs[mca_index].lookup() or ("",)
        packets = SpikePacket.from_array(
            spikes, self.packet_bits, source=f"{self.mpe_id}.mca{mca_index}", target=targets[0]
        )
        for packet in packets:
            self.obuffs[mca_index].push(packet)
        return [self.obuffs[mca_index].pop() for _ in range(len(packets))]

    # -- statistics ------------------------------------------------------------------------

    @property
    def buffer_accesses(self) -> int:
        """Total iBUFF + oBUFF accesses."""
        return sum(b.accesses for b in self.ibuffs) + sum(b.accesses for b in self.obuffs)

    @property
    def tbuffer_lookups(self) -> int:
        """Total tBUFF lookups."""
        return sum(t.lookups for t in self.tbuffs)

    @property
    def crossbar_energy_j(self) -> float:
        """Accumulated analog crossbar read energy."""
        return sum(m.total_energy_j for m in self.mcas)

    @property
    def crossbar_evaluations(self) -> int:
        """Accumulated MCA evaluations."""
        return sum(m.total_reads for m in self.mcas)
