"""Tests for the neural-network layers and training machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.snn.layers import AvgPool2D, Conv2D, Dense, Flatten, col2im, im2col
from repro.snn.network import Network
from repro.snn.training import Trainer, cross_entropy_loss, softmax


class TestDense:
    def test_forward_shape_and_relu(self, rng):
        layer = Dense(6, 4, rng=rng)
        out = layer.forward(rng.normal(size=(3, 6)))
        assert out.shape == (3, 4)
        assert np.all(out >= 0)

    def test_linear_excludes_bias_and_activation(self, rng):
        layer = Dense(5, 3, rng=rng)
        layer.bias[:] = 10.0
        x = rng.normal(size=(2, 5))
        np.testing.assert_allclose(layer.linear(x), x @ layer.weights)

    def test_output_shape_validation(self, rng):
        layer = Dense(6, 4, rng=rng)
        assert layer.output_shape((6,)) == (4,)
        with pytest.raises(ValueError):
            layer.output_shape((5,))

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(4, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_gradient_matches_numerical(self, rng):
        layer = Dense(5, 3, activation="relu", rng=rng)
        x = rng.normal(size=(4, 5))
        grad_out = rng.normal(size=(4, 3))
        layer.forward(x, training=True)
        layer.backward(grad_out)
        analytic = layer.gradients()["weights"]
        eps = 1e-6
        i, j = 2, 1
        layer.weights[i, j] += eps
        plus = float(np.sum(layer.forward(x) * grad_out))
        layer.weights[i, j] -= 2 * eps
        minus = float(np.sum(layer.forward(x) * grad_out))
        layer.weights[i, j] += eps
        numerical = (plus - minus) / (2 * eps)
        assert analytic[i, j] == pytest.approx(numerical, rel=1e-4, abs=1e-6)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            Dense(0, 4)

    def test_parameter_count(self, rng):
        assert Dense(5, 3, use_bias=True, rng=rng).parameter_count == 18
        assert Dense(5, 3, use_bias=False, rng=rng).parameter_count == 15


class TestConv2D:
    def test_forward_shapes_valid_and_same(self, rng):
        x = rng.random((2, 8, 8, 3))
        valid = Conv2D(3, 4, kernel_size=3, padding="valid", rng=rng)
        same = Conv2D(3, 4, kernel_size=3, padding="same", rng=rng)
        assert valid.forward(x).shape == (2, 6, 6, 4)
        assert same.forward(x).shape == (2, 8, 8, 4)

    def test_matches_explicit_convolution(self, rng):
        layer = Conv2D(1, 1, kernel_size=3, padding="valid", activation=None, use_bias=False, rng=rng)
        x = rng.random((1, 5, 5, 1))
        out = layer.forward(x)
        kernel = layer.weights[:, :, 0, 0]
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = np.sum(x[0, i : i + 3, j : j + 3, 0] * kernel)
        np.testing.assert_allclose(out[0, :, :, 0], expected, atol=1e-12)

    def test_gradient_matches_numerical(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, padding="same", rng=rng)
        x = rng.normal(size=(2, 6, 6, 2))
        grad_out = rng.normal(size=(2, 6, 6, 3))
        layer.forward(x, training=True)
        layer.backward(grad_out)
        analytic = layer.gradients()["weights"]
        eps = 1e-6
        idx = (1, 2, 0, 1)
        layer.weights[idx] += eps
        plus = float(np.sum(layer.forward(x) * grad_out))
        layer.weights[idx] -= 2 * eps
        minus = float(np.sum(layer.forward(x) * grad_out))
        layer.weights[idx] += eps
        assert analytic[idx] == pytest.approx((plus - minus) / (2 * eps), rel=1e-4, abs=1e-6)

    def test_channel_limit_masks_weights(self, rng):
        layer = Conv2D(8, 4, kernel_size=3, in_channel_limit=1, rng=rng)
        assert layer.fan_in == 9
        assert layer.connected_in_channels == 1
        # Each output channel connects to exactly one input channel.
        per_output = layer.connection_mask[0, 0].sum(axis=0)
        np.testing.assert_allclose(per_output, 1.0)
        assert np.count_nonzero(layer.weights) <= 9 * 4

    def test_channel_limit_survives_training_step(self, rng):
        layer = Conv2D(4, 2, kernel_size=3, in_channel_limit=1, rng=rng, activation=None)
        x = rng.random((2, 6, 6, 4))
        layer.forward(x, training=True)
        layer.backward(rng.normal(size=(2, 4, 4, 2)))
        masked = layer.gradients()["weights"][layer.connection_mask == 0]
        np.testing.assert_allclose(masked, 0.0)

    def test_channel_limit_validation(self, rng):
        with pytest.raises(ValueError):
            Conv2D(4, 2, in_channel_limit=5, rng=rng)

    def test_parameter_count_reflects_mask(self, rng):
        layer = Conv2D(8, 4, kernel_size=3, in_channel_limit=2, use_bias=False, rng=rng)
        assert layer.parameter_count == 3 * 3 * 2 * 4

    def test_output_shape_validation(self, rng):
        layer = Conv2D(3, 2, kernel_size=5, padding="valid", rng=rng)
        with pytest.raises(ValueError):
            layer.output_shape((4, 4, 3))
        with pytest.raises(ValueError):
            layer.output_shape((8, 8, 2))


class TestPoolFlatten:
    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        pooled = AvgPool2D(2).forward(x)
        np.testing.assert_allclose(pooled[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_shape_validation(self):
        with pytest.raises(ValueError):
            AvgPool2D(2).output_shape((5, 4, 3))
        with pytest.raises(ValueError):
            AvgPool2D(0)

    def test_avgpool_backward_distributes_gradient(self):
        pool = AvgPool2D(2)
        x = np.random.default_rng(0).random((1, 4, 4, 1))
        pool.forward(x, training=True)
        grad = pool.backward(np.ones((1, 2, 2, 1)))
        np.testing.assert_allclose(grad, 0.25)

    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.random.default_rng(0).random((2, 3, 3, 2))
        flat = layer.forward(x, training=True)
        assert flat.shape == (2, 18)
        back = layer.backward(flat)
        assert back.shape == x.shape

    def test_im2col_col2im_adjoint(self):
        # col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 6, 6, 3))
        cols, _ = im2col(x, 3, 3, "same")
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 3, 3, "same")))
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestTraining:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 10)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_cross_entropy_gradient_direction(self):
        logits = np.zeros((1, 3))
        loss, grad = cross_entropy_loss(logits, np.array([1]))
        assert loss == pytest.approx(np.log(3))
        assert grad[0, 1] < 0 < grad[0, 0]

    def test_trainer_validation(self):
        with pytest.raises(ValueError):
            Trainer(optimizer="rmsprop")
        with pytest.raises(ValueError):
            Trainer(learning_rate=0.0)

    def test_training_reduces_loss_mlp(self, rng):
        network = Network(
            (10,),
            [Dense(10, 16, rng=rng), Dense(16, 3, activation=None, rng=rng)],
            name="train-test",
        )
        x = rng.normal(size=(60, 10))
        labels = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0).astype(int)
        trainer = Trainer(learning_rate=0.01, batch_size=16, rng=rng)
        result = trainer.fit(network, x, labels, epochs=12)
        assert result.losses[-1] < result.losses[0]
        assert result.train_accuracy > 0.6

    def test_training_sgd_momentum(self, rng):
        network = Network((6,), [Dense(6, 3, activation=None, rng=rng)], name="sgd")
        x = rng.normal(size=(40, 6))
        labels = (x[:, 0] > 0).astype(int)
        trainer = Trainer(optimizer="sgd", learning_rate=0.05, batch_size=8, rng=rng)
        result = trainer.fit(network, x, labels, epochs=10)
        assert result.final_loss < result.losses[0]

    def test_mismatched_labels_rejected(self, rng):
        network = Network((4,), [Dense(4, 2, rng=rng)], name="bad")
        with pytest.raises(ValueError):
            Trainer(rng=rng).fit(network, np.ones((3, 4)), np.array([0, 1]))

    def test_training_small_cnn(self, rng):
        network = Network(
            (6, 6, 1),
            [
                Conv2D(1, 4, kernel_size=3, padding="same", rng=rng),
                Flatten(),
                Dense(6 * 6 * 4, 2, activation=None, rng=rng),
            ],
            name="cnn-train",
        )
        x = rng.random((30, 6, 6, 1))
        labels = (x.mean(axis=(1, 2, 3)) > 0.5).astype(int)
        result = Trainer(learning_rate=0.01, batch_size=10, rng=rng).fit(network, x, labels, epochs=8)
        assert result.final_loss < result.losses[0]

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=5, deadline=None)
    def test_loss_non_negative(self, classes):
        rng = np.random.default_rng(classes)
        logits = rng.normal(size=(8, classes))
        labels = rng.integers(0, classes, size=8)
        loss, _ = cross_entropy_loss(logits, labels)
        assert loss >= 0
