"""Fig. 13 — energy with/without event-driven optimisations on MNIST.

Regenerates both panels (MLP and CNN) for MCA sizes 128/64/32 and checks that
event-driven operation always saves energy and that the relative savings grow
as the MCA (spike packet) gets smaller.
"""

from __future__ import annotations

from repro.experiments import run_fig13


def test_fig13_event_driven_savings(benchmark, context):
    """Regenerate Fig. 13 for the MNIST MLP and CNN."""
    result = benchmark.pedantic(lambda: run_fig13(context=context), iterations=1, rounds=1)
    print("\n" + result.as_table())

    for name in ("mnist-mlp", "mnist-cnn"):
        entries = result.entries_for(name)
        assert set(entries) == {32, 64, 128}
        for entry in entries.values():
            assert entry.energy_with_j < entry.energy_without_j, (name, entry.crossbar_size)
        # Smaller MCAs (shorter packets) benefit the most from zero-checking.
        assert entries[32].savings_fraction >= entries[64].savings_fraction >= entries[128].savings_fraction
