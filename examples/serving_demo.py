"""Serving API walkthrough: sessions, sharded pools and the result schema.

Builds one MLP, opens a :class:`repro.serve.ChipSession` on it and serves a
few inference requests with per-request overrides; then shards a larger
batch across a :class:`repro.serve.ChipPool` and verifies the merged
response is identical to the single-session answer; finally round-trips the
response through JSON — the path a server or queue worker would use to ship
results across a process boundary.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import ArchitectureConfig
from repro.datasets import make_dataset
from repro.serve import ChipPool, ChipSession, InferenceRequest, InferenceResponse
from repro.snn import Dense, Network, Trainer, convert_to_snn
from repro.utils.units import format_energy


def main() -> None:
    rng = np.random.default_rng(0)

    dataset = make_dataset("mnist", train_samples=192, test_samples=96, seed=1)
    train_x = dataset.train_images.reshape(-1, 784)[:, ::4]  # 196 inputs
    test_x = dataset.test_images.reshape(-1, 784)[:, ::4]
    network = Network(
        (196,),
        [
            Dense(196, 64, use_bias=False, rng=rng, name="hidden"),
            Dense(64, 10, activation=None, use_bias=False, rng=rng, name="output"),
        ],
        name="serving-demo-mlp",
    )
    Trainer(learning_rate=0.005, batch_size=32, rng=rng).fit(
        network, train_x, dataset.train_labels, epochs=4
    )
    snn = convert_to_snn(network, train_x[:48])
    config = ArchitectureConfig(crossbar_rows=32, crossbar_columns=32)

    # -- one session, several requests --------------------------------------------
    session = ChipSession(
        snn, config=config, timesteps=16, encoder="poisson", seed=7
    )
    batch = test_x[:64]
    labels = dataset.test_labels[:64]
    response = session.infer(InferenceRequest(inputs=batch, labels=labels))
    print(
        f"session   : {response.batch_size} samples, accuracy {response.accuracy:.2%}, "
        f"energy {format_energy(response.energy.total_j)}"
    )
    quick = session.infer(InferenceRequest(inputs=batch[:4], timesteps=8))
    print(
        f"override  : {quick.batch_size} samples at {quick.timesteps} timesteps "
        f"(session default is {session.timesteps})"
    )

    # -- sharding the same batch across a pool -------------------------------------
    with ChipPool(
        snn, jobs=4, config=config, timesteps=16, encoder="poisson", seed=7
    ) as pool:
        start = time.perf_counter()
        sharded = pool.infer(InferenceRequest(inputs=batch, labels=labels))
        elapsed = time.perf_counter() - start
    print(
        f"pool      : {sharded.jobs} shards in {elapsed:.3f}s, "
        f"accuracy {sharded.accuracy:.2%}"
    )
    print(
        "identical :",
        bool(np.array_equal(response.predictions, sharded.predictions))
        and bool(np.array_equal(response.spike_counts, sharded.spike_counts)),
    )

    # -- results across a process boundary -----------------------------------------
    payload = sharded.to_json()
    restored = InferenceResponse.from_json(payload)
    print(
        f"schema    : {len(payload)} JSON bytes, lossless:",
        restored.counters.as_dict() == sharded.counters.as_dict()
        and restored.energy.components == sharded.energy.components,
    )


if __name__ == "__main__":
    main()
