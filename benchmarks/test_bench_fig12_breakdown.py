"""Fig. 12 — energy breakdowns for RESPARC-32/64/128 and the CMOS baseline.

Regenerates the four panels of Fig. 12 on the full-size benchmarks and checks
the paper's qualitative claims: MLP energy falls monotonically with MCA size,
CNN energy is minimised at MCA-64, CMOS MLPs are memory dominated and CMOS
CNNs are core dominated.
"""

from __future__ import annotations

from repro.experiments import run_fig12
from repro.workloads import list_benchmarks


def test_fig12_energy_breakdowns(benchmark, context):
    """Regenerate Fig. 12 for all six benchmarks and MCA sizes 32/64/128."""
    result = benchmark.pedantic(lambda: run_fig12(context=context), iterations=1, rounds=1)
    print("\n" + result.as_table())

    for spec in list_benchmarks("MLP"):
        entries = result.resparc_for(spec.name)
        assert entries[32].total_j > entries[64].total_j > entries[128].total_j, spec.name
        assert result.cmos_for(spec.name).memory_fraction > 0.5, spec.name

    for spec in list_benchmarks("CNN"):
        entries = result.resparc_for(spec.name)
        assert result.optimal_size(spec.name) == 64, spec.name
        assert entries[32].total_j > entries[64].total_j, spec.name
        assert result.cmos_for(spec.name).core_fraction > 0.5, spec.name
