"""Run-over-run load-lab comparison: thresholds, statistics, soft exit.

The compare tool is CI's memory: it diffs the two newest sweep runs in
the persisted trajectory and warns on regressions without ever failing
the build.  These tests feed it synthetic run records, so every threshold
(throughput drop, p95 rise with its absolute floor, energy rise, the
Mann-Whitney latency shift) is exercised deterministically.
"""

from __future__ import annotations

import json

from repro.loadlab.compare import (
    compare_latest_runs,
    compare_runs,
    render_comparison,
)
from repro.loadlab.persist import persist_result
from repro.loadlab.__main__ import main as loadlab_main


def _cell(
    topology: str = "server",
    load: str = "closed-c1",
    *,
    throughput_rps: float = 10.0,
    p95_s: float = 0.05,
    energy_j: float = 2e-6,
    latency_samples: list[float] | None = None,
) -> dict:
    return {
        "topology": topology,
        "load": load,
        "throughput_rps": throughput_rps,
        "queue_wait_s": {"p95": p95_s},
        "energy_j_per_request": energy_j,
        "latency_samples": latency_samples
        or [0.01, 0.011, 0.012, 0.013, 0.014, 0.015],
    }


def _run(cells: list[dict], ran_at: str = "2026-01-01T00:00:00Z") -> dict:
    return {"kind": "sweep", "ran_at": ran_at, "cells": cells}


class TestCompareRuns:
    def test_identical_runs_raise_no_warnings(self):
        run = _run([_cell(), _cell(topology="gateway")])
        report = compare_runs(run, run)
        assert report["matched_cells"] == 2
        assert report["warnings"] == []
        assert "no regressions flagged" in render_comparison(report)

    def test_all_regression_classes_flagged(self):
        fast = [0.010 + 0.0001 * i for i in range(12)]
        slow = [0.030 + 0.0001 * i for i in range(12)]
        previous = _run([_cell(latency_samples=fast)])
        latest = _run(
            [
                _cell(
                    throughput_rps=5.0,  # -50%
                    p95_s=0.5,  # 10x, far past the 1ms floor
                    energy_j=3e-6,  # +50%
                    latency_samples=slow,
                )
            ],
            ran_at="2026-01-02T00:00:00Z",
        )
        report = compare_runs(previous, latest)
        text = "\n".join(report["warnings"])
        assert "throughput dropped" in text
        assert "p95 queue wait rose" in text
        assert "energy/request rose" in text
        assert "latency distribution shifted slower" in text

    def test_p95_floor_suppresses_microscopic_rises(self):
        # 3x relative rise but only 0.2ms absolute: jitter, not regression.
        previous = _run([_cell(p95_s=0.0001)])
        latest = _run([_cell(p95_s=0.0003)])
        report = compare_runs(previous, latest)
        assert report["warnings"] == []

    def test_faster_latest_is_never_flagged(self):
        slow = [0.030 + 0.0001 * i for i in range(12)]
        fast = [0.010 + 0.0001 * i for i in range(12)]
        report = compare_runs(
            _run([_cell(throughput_rps=5.0, p95_s=0.5, latency_samples=slow)]),
            _run([_cell(throughput_rps=10.0, p95_s=0.05, latency_samples=fast)]),
        )
        assert report["warnings"] == []

    def test_unmatched_cells_reported_not_compared(self):
        report = compare_runs(
            _run([_cell(), _cell(topology="retired")]),
            _run([_cell(), _cell(topology="brand-new")]),
        )
        assert report["matched_cells"] == 1
        assert ["retired", "closed-c1"] in report["unmatched_previous"]
        assert ["brand-new", "closed-c1"] in report["unmatched_latest"]
        assert "unmatched" in render_comparison(report)


class TestCompareCli:
    def _write_runs(self, path, runs):
        for run in runs:
            persist_result(path, "runs", run, append=True)

    def test_fewer_than_two_runs_is_a_clean_noop(self, tmp_path, capsys):
        path = tmp_path / "loadlab.json"
        assert compare_latest_runs(path) is None
        assert "nothing to compare" in capsys.readouterr().out
        self._write_runs(path, [_run([_cell()])])
        assert loadlab_main(["compare", "--input", str(path)]) == 0
        assert "1 sweep run(s)" in capsys.readouterr().out

    def test_compares_newest_two_and_exits_zero_despite_warnings(
        self, tmp_path, capsys
    ):
        path = tmp_path / "loadlab.json"
        self._write_runs(
            path,
            [
                _run([_cell(throughput_rps=99.0)], ran_at="old"),
                _run([_cell(throughput_rps=10.0)], ran_at="mid"),
                _run([_cell(throughput_rps=5.0)], ran_at="new"),
            ],
        )
        # A regression between the two newest runs still exits 0 (soft gate).
        assert loadlab_main(["compare", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "WARNING" in out
        assert "throughput dropped 50.0%" in out
        assert "latest new vs previous mid" in out

    def test_json_output_parses(self, tmp_path, capsys):
        path = tmp_path / "loadlab.json"
        self._write_runs(path, [_run([_cell()]), _run([_cell()])])
        assert loadlab_main(["compare", "--input", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["matched_cells"] == 1
        assert report["warnings"] == []
