"""A small structured run logger for experiment drivers.

The experiment drivers in :mod:`repro.experiments` record their progress and
key result rows through :class:`RunLogger`, which keeps an in-memory record
(useful in tests) and optionally echoes to stdout or a file.  It intentionally
avoids the standard :mod:`logging` module's global state so parallel test runs
never interleave configuration.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import IO, Iterable

__all__ = ["LogRecord", "RunLogger"]


@dataclass(frozen=True)
class LogRecord:
    """One logged event."""

    elapsed_s: float
    level: str
    message: str


@dataclass
class RunLogger:
    """Collects timestamped log records for an experiment run.

    Parameters
    ----------
    name:
        Identifier included in echoed lines.
    echo:
        When true, records are also written to ``stream``.
    stream:
        Output stream used when echoing (defaults to stdout).
    """

    name: str = "run"
    echo: bool = False
    stream: IO[str] | None = None
    records: list[LogRecord] = field(default_factory=list)
    _start: float = field(default_factory=time.perf_counter, repr=False)

    def _log(self, level: str, message: str) -> LogRecord:
        record = LogRecord(time.perf_counter() - self._start, level, message)
        self.records.append(record)
        if self.echo:
            out = self.stream or sys.stdout
            out.write(f"[{self.name} +{record.elapsed_s:8.3f}s] {level:<5} {message}\n")
        return record

    def info(self, message: str) -> LogRecord:
        """Record an informational message."""
        return self._log("INFO", message)

    def warning(self, message: str) -> LogRecord:
        """Record a warning."""
        return self._log("WARN", message)

    def result(self, message: str) -> LogRecord:
        """Record a headline result row."""
        return self._log("RESULT", message)

    def table(self, header: Iterable[str], rows: Iterable[Iterable[object]]) -> None:
        """Record a small fixed-width table as RESULT records."""
        header = list(header)
        rows = [list(map(str, row)) for row in rows]
        widths = [len(h) for h in header]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        self.result(fmt.format(*header))
        for row in rows:
            self.result(fmt.format(*row))

    def messages(self, level: str | None = None) -> list[str]:
        """Return logged messages, optionally filtered by level."""
        return [r.message for r in self.records if level is None or r.level == level]
