"""Analytical CACTI-like SRAM model.

The paper models its input memory (and the CMOS baseline's weight/activation
memory) with CACTI 6.0.  CACTI is a large C++ tool; what the architecture
study actually consumes from it is just three numbers per memory
configuration: dynamic energy per access, leakage power, and access latency.
:class:`SRAMModel` provides those three numbers from an analytical model with
the same first-order scaling behaviour as CACTI:

* dynamic access energy grows roughly with ``sqrt(capacity)`` (bit-line and
  word-line length) and linearly with the word width,
* leakage power grows linearly with capacity,
* access latency grows with ``sqrt(capacity)``.

The coefficients are anchored to published 45 nm CACTI data points (a 64 kB
SRAM macro: ≈40 pJ/32-bit access, ≈20 mW/MB leakage, ≈1 ns access).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = ["SRAMConfig", "SRAMModel"]

#: Anchor point: a 64 kB, 32-bit wide SRAM macro at 45 nm.
_ANCHOR_CAPACITY_BYTES = 64 * 1024
_ANCHOR_WORD_BITS = 32
_ANCHOR_ACCESS_ENERGY_J = 40e-12
_ANCHOR_LEAKAGE_W_PER_BYTE = 20e-3 / (1024 * 1024)
_ANCHOR_ACCESS_LATENCY_S = 1.0e-9


@dataclass(frozen=True)
class SRAMConfig:
    """Configuration of one SRAM macro.

    Attributes
    ----------
    capacity_bytes:
        Total capacity.
    word_bits:
        Width of one access.
    banks:
        Number of equal banks; banking reduces the per-access energy and
        latency (each access touches one bank) at a small leakage overhead.
    """

    capacity_bytes: int = 64 * 1024
    word_bits: int = 32
    banks: int = 1

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("word_bits", self.word_bits)
        check_positive("banks", self.banks)
        if self.capacity_bytes % self.banks:
            raise ValueError(
                f"capacity_bytes ({self.capacity_bytes}) must be divisible by banks ({self.banks})"
            )

    @property
    def bank_capacity_bytes(self) -> int:
        """Capacity of one bank."""
        return self.capacity_bytes // self.banks


@dataclass
class SRAMModel:
    """Analytical access-energy / leakage / latency model of an SRAM macro."""

    config: SRAMConfig = SRAMConfig()

    def access_energy_j(self) -> float:
        """Dynamic energy of one read or write access (J)."""
        cfg = self.config
        size_factor = (cfg.bank_capacity_bytes / _ANCHOR_CAPACITY_BYTES) ** 0.5
        width_factor = cfg.word_bits / _ANCHOR_WORD_BITS
        return _ANCHOR_ACCESS_ENERGY_J * size_factor * width_factor

    def leakage_power_w(self) -> float:
        """Standby leakage power of the whole macro (W).

        Banking adds a 5% overhead per extra bank for duplicated periphery.
        """
        cfg = self.config
        banking_overhead = 1.0 + 0.05 * (cfg.banks - 1)
        return _ANCHOR_LEAKAGE_W_PER_BYTE * cfg.capacity_bytes * banking_overhead

    def access_latency_s(self) -> float:
        """Latency of one access (s)."""
        cfg = self.config
        size_factor = (cfg.bank_capacity_bytes / _ANCHOR_CAPACITY_BYTES) ** 0.5
        return _ANCHOR_ACCESS_LATENCY_S * max(size_factor, 0.25)

    def energy_for_bytes(self, n_bytes: float) -> float:
        """Dynamic energy of transferring ``n_bytes`` through the port (J)."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        bytes_per_access = self.config.word_bits / 8.0
        accesses = n_bytes / bytes_per_access
        return accesses * self.access_energy_j()

    def leakage_energy_j(self, duration_s: float) -> float:
        """Leakage energy over ``duration_s`` seconds (J)."""
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        return self.leakage_power_w() * duration_s
