"""CMOS digital baseline configuration.

The paper's baseline (Section 4.1, Fig. 9) is an aggressively optimised
digital SNN accelerator built around the FALCON dataflow [15]: an array of 16
Neuron Units (NUs) fed by per-NU input FIFOs and a shared weight FIFO, with
weights and activations stored in SRAM and with event-driven optimisations
that skip memory fetches and computations for input neurons that did not
spike.  The published envelope is 45 nm, 0.19 mm², 35.1 mW at 1 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = ["BaselineConfig"]


@dataclass(frozen=True)
class BaselineConfig:
    """Micro-architectural parameters of the CMOS baseline (Fig. 9).

    Attributes
    ----------
    nu_count:
        Number of Neuron Units operating in parallel (one MAC per NU per
        cycle).
    input_fifo_count / weight_fifo_count:
        Number of input-activation and weight FIFOs.
    fifo_depth:
        Depth of each FIFO in words.
    fifo_width_bits / nu_width_bits:
        Datapath width of the FIFOs and NUs (4-bit weights in the paper).
    frequency_hz:
        Core clock (1 GHz).
    event_driven:
        When true (the paper's setting), memory fetches and MACs whose input
        spike bit is zero are skipped.
    weight_bits:
        Weight precision stored in the weight memory.
    memory_word_bits:
        Width of one weight-memory access.
    area_mm2, power_w, gate_count:
        Published implementation metrics, kept for reporting/validation.
    """

    nu_count: int = 16
    input_fifo_count: int = 16
    weight_fifo_count: int = 1
    fifo_depth: int = 32
    fifo_width_bits: int = 4
    nu_width_bits: int = 4
    frequency_hz: float = 1e9
    event_driven: bool = True
    weight_bits: int = 4
    memory_word_bits: int = 64
    area_mm2: float = 0.19
    power_w: float = 35.1e-3
    gate_count: int = 44798

    def __post_init__(self) -> None:
        check_positive("nu_count", self.nu_count)
        check_positive("input_fifo_count", self.input_fifo_count)
        check_positive("weight_fifo_count", self.weight_fifo_count)
        check_positive("fifo_depth", self.fifo_depth)
        check_positive("fifo_width_bits", self.fifo_width_bits)
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("weight_bits", self.weight_bits)
        check_positive("memory_word_bits", self.memory_word_bits)

    @property
    def cycle_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def weights_per_word(self) -> int:
        """Weights packed into one weight-memory word."""
        return max(self.memory_word_bits // self.weight_bits, 1)

    def with_weight_bits(self, bits: int) -> "BaselineConfig":
        """Copy of the configuration with a different weight precision."""
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        return BaselineConfig(
            nu_count=self.nu_count,
            input_fifo_count=self.input_fifo_count,
            weight_fifo_count=self.weight_fifo_count,
            fifo_depth=self.fifo_depth,
            fifo_width_bits=bits,
            nu_width_bits=bits,
            frequency_hz=self.frequency_hz,
            event_driven=self.event_driven,
            weight_bits=bits,
            memory_word_bits=self.memory_word_bits,
            area_mm2=self.area_mm2,
            power_w=self.power_w,
            gate_count=self.gate_count,
        )
