"""The serving API: session inference, pool sharding parity, result schema.

Follows the ``tests/test_backend_parity.py`` contract style: a sharded
:class:`~repro.serve.ChipPool` run is only allowed to be *parallel* — never
different.  Predictions, spike counts and every integer event counter must
match a single :class:`~repro.serve.ChipSession` exactly; the accumulated
float energies agree to floating-point accumulation order (1e-9 relative).
The schema tests assert that a response survives a ``to_dict -> JSON ->
from_dict`` round trip losslessly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import ArchitectureConfig, EventCounters
from repro.energy.model import EnergyReport
from repro.serve import ChipPool, ChipSession, InferenceRequest, InferenceResponse
from repro.snn import Dense, EncoderState, Network, convert_to_snn

ENERGY_RTOL = 1e-9

#: Integer event counters that must match exactly across jobs counts.
EXACT_COUNTERS = [
    name
    for name in EventCounters().as_dict()
    if name != "crossbar_device_energy_j"
]


def _mlp(seed: int, dims: tuple[int, ...]):
    rng = np.random.default_rng(seed)
    layers = []
    for i, (n_in, n_out) in enumerate(zip(dims[:-1], dims[1:])):
        last = i == len(dims) - 2
        layers.append(
            Dense(
                n_in,
                n_out,
                activation=None if last else "relu",
                use_bias=False,
                rng=rng,
                name=f"fc{i}",
            )
        )
    network = Network((dims[0],), layers, name=f"serve-{'x'.join(map(str, dims))}")
    return convert_to_snn(network, rng.random((12, dims[0])))


@pytest.fixture(scope="module")
def workload():
    snn = _mlp(5, (48, 24, 10))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    rng = np.random.default_rng(42)
    inputs = rng.random((13, 48))
    labels = rng.integers(0, 10, size=13)
    return snn, config, inputs, labels


def _assert_responses_identical(single, sharded):
    np.testing.assert_array_equal(single.predictions, sharded.predictions)
    np.testing.assert_array_equal(single.spike_counts, sharded.spike_counts)
    assert single.accuracy == sharded.accuracy
    s, p = single.counters.as_dict(), sharded.counters.as_dict()
    for name in EXACT_COUNTERS:
        assert s[name] == p[name], f"counter {name}: session={s[name]} pool={p[name]}"
    assert p["crossbar_device_energy_j"] == pytest.approx(
        s["crossbar_device_energy_j"], rel=ENERGY_RTOL
    )
    assert sharded.energy.total_j == pytest.approx(single.energy.total_j, rel=ENERGY_RTOL)
    for component, energy_j in single.energy.components.items():
        assert sharded.energy.components[component] == pytest.approx(
            energy_j, rel=ENERGY_RTOL, abs=1e-30
        ), f"energy component {component}"


class TestChipSession:
    def test_repeated_inference_is_deterministic(self, workload):
        snn, config, inputs, labels = workload
        session = ChipSession(
            snn, config=config, timesteps=6, encoder="poisson", seed=3
        )
        first = session.infer(InferenceRequest(inputs=inputs, labels=labels))
        second = session.infer(InferenceRequest(inputs=inputs, labels=labels))
        np.testing.assert_array_equal(first.predictions, second.predictions)
        np.testing.assert_array_equal(first.spike_counts, second.spike_counts)
        assert first.counters.as_dict() == second.counters.as_dict()
        assert first.energy.components == second.energy.components

    def test_per_request_overrides(self, workload):
        snn, config, inputs, labels = workload
        session = ChipSession(snn, config=config, timesteps=6, seed=0)
        base = session.infer(InferenceRequest(inputs=inputs))
        assert base.accuracy is None
        assert base.timesteps == 6
        assert base.batch_size == len(inputs)
        longer = session.infer(InferenceRequest(inputs=inputs, timesteps=9, labels=labels))
        assert longer.timesteps == 9
        assert longer.accuracy is not None
        assert longer.spike_counts.sum() >= base.spike_counts.sum()
        single = session.infer(InferenceRequest(inputs=inputs[0]))
        assert single.predictions.shape == (1,)

    def test_session_rejects_mismatched_chip_config(self, workload):
        snn, config, _, _ = workload
        chip = ChipSession(snn, config=config, seed=0).chip
        with pytest.raises(ValueError, match="different ArchitectureConfig"):
            ChipSession(snn, chip=chip, config=ArchitectureConfig())

    def test_invalid_request_parameters_rejected(self, workload):
        snn, config, inputs, _ = workload
        with pytest.raises(ValueError, match="timesteps"):
            InferenceRequest(inputs=inputs, timesteps=0)
        with pytest.raises(ValueError, match="sample_offset"):
            InferenceRequest(inputs=inputs, sample_offset=-1)
        with pytest.raises(ValueError, match="backend"):
            ChipSession(snn, config=config, backend="quantum")


class TestChipPoolParity:
    @pytest.mark.parametrize("encoder", ["deterministic", "poisson"])
    def test_pool_matches_single_session_vectorized(self, workload, encoder):
        snn, config, inputs, labels = workload
        session = ChipSession(
            snn, config=config, timesteps=7, encoder=encoder, seed=11
        )
        single = session.infer(InferenceRequest(inputs=inputs, labels=labels))
        with ChipPool(
            snn, jobs=4, config=config, timesteps=7, encoder=encoder, seed=11
        ) as pool:
            sharded = pool.infer(InferenceRequest(inputs=inputs, labels=labels))
        assert sharded.jobs == 4
        _assert_responses_identical(single, sharded)

    def test_pool_matches_single_session_structural(self, workload):
        snn, config, inputs, labels = workload
        session = ChipSession(
            snn, config=config, timesteps=5, encoder="poisson", backend="structural", seed=2
        )
        single = session.infer(InferenceRequest(inputs=inputs[:6], labels=labels[:6]))
        with ChipPool(
            snn,
            jobs=3,
            config=config,
            timesteps=5,
            encoder="poisson",
            backend="structural",
            seed=2,
        ) as pool:
            sharded = pool.infer(InferenceRequest(inputs=inputs[:6], labels=labels[:6]))
        _assert_responses_identical(single, sharded)

    def test_jobs_counts_agree_with_each_other(self, workload):
        snn, config, inputs, labels = workload
        responses = []
        for jobs in (1, 2, 4):
            with ChipPool(
                snn, jobs=jobs, config=config, timesteps=6, encoder="poisson", seed=9
            ) as pool:
                responses.append(pool.infer(InferenceRequest(inputs=inputs, labels=labels)))
        _assert_responses_identical(responses[0], responses[1])
        _assert_responses_identical(responses[0], responses[2])

    def test_batch_smaller_than_jobs(self, workload):
        snn, config, inputs, labels = workload
        with ChipPool(snn, jobs=8, config=config, timesteps=5, seed=1) as pool:
            response = pool.infer(InferenceRequest(inputs=inputs[:3], labels=labels[:3]))
        assert response.batch_size == 3
        assert response.jobs <= 3
        assert response.predictions.shape == (3,)

    def test_jobs_4_batch_2_drops_empty_shards(self, workload):
        # Regression: with batch < jobs the empty shards must be dropped, so
        # no worker ever receives a degenerate zero-sample request, and the
        # result still matches a single session exactly.
        snn, config, inputs, labels = workload
        request = InferenceRequest(inputs=inputs[:2], labels=labels[:2])
        session = ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=1)
        single = session.infer(request)
        with ChipPool(
            snn, jobs=4, config=config, timesteps=5, encoder="poisson", seed=1
        ) as pool:
            assert pool._shard_bounds(2) == [(0, 1), (1, 2)]
            assert all(stop > start for start, stop in pool._shard_bounds(2))
            response = pool.infer(request)
        assert response.jobs == 2
        _assert_responses_identical(single, response)

    def test_empty_batch_raises_clear_error(self, workload):
        snn, config, _, _ = workload
        with pytest.raises(ValueError, match="batch is empty"):
            InferenceRequest(inputs=np.zeros((0, 48)))
        with ChipPool(snn, jobs=4, config=config, timesteps=5, seed=1) as pool:
            # The pool never even sees a zero-sample request — the schema
            # rejects it at construction, which is the clear error we want.
            with pytest.raises(ValueError, match="batch is empty"):
                pool.infer(InferenceRequest(inputs=np.zeros((0, 48))))

    def test_concurrent_callers_are_serialised(self, workload):
        # Shard tasks are pinned to fixed worker sessions (whose structural
        # chips are mutated in place), so the pool serialises infer() calls;
        # concurrent callers must still each get the exact single-caller
        # answer.
        from concurrent.futures import ThreadPoolExecutor

        snn, config, inputs, labels = workload
        request = InferenceRequest(inputs=inputs[:6], labels=labels[:6])
        with ChipPool(
            snn, jobs=2, config=config, timesteps=5, encoder="poisson",
            backend="structural", seed=8,
        ) as pool:
            expected = pool.infer(request)
            with ThreadPoolExecutor(max_workers=4) as callers:
                responses = list(callers.map(pool.infer, [request] * 4))
        for response in responses:
            np.testing.assert_array_equal(response.predictions, expected.predictions)
            np.testing.assert_array_equal(response.spike_counts, expected.spike_counts)
            got, want = response.counters.as_dict(), expected.counters.as_dict()
            for name in EXACT_COUNTERS:
                assert got[name] == want[name], name
            # The structural chip's lifetime energy accumulator loses ulps
            # as it grows across runs (see the prebuilt-chip parity test).
            assert got["crossbar_device_energy_j"] == pytest.approx(
                want["crossbar_device_energy_j"], rel=ENERGY_RTOL
            )

    def test_closed_pool_rejects_requests(self, workload):
        snn, config, inputs, _ = workload
        pool = ChipPool(snn, jobs=2, config=config, timesteps=4, seed=0)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.infer(InferenceRequest(inputs=inputs))

    def test_invalid_jobs_rejected(self, workload):
        snn, config, _, _ = workload
        with pytest.raises(ValueError, match="jobs"):
            ChipPool(snn, jobs=0, config=config)


class TestResultSchema:
    def test_response_json_round_trip_is_lossless(self, workload):
        snn, config, inputs, labels = workload
        with ChipPool(
            snn, jobs=2, config=config, timesteps=6, encoder="poisson", seed=4
        ) as pool:
            response = pool.infer(InferenceRequest(inputs=inputs, labels=labels))
        payload = response.to_json()
        restored = InferenceResponse.from_json(payload)
        np.testing.assert_array_equal(restored.predictions, response.predictions)
        np.testing.assert_array_equal(restored.spike_counts, response.spike_counts)
        assert restored.accuracy == response.accuracy
        # Bit-exact float round trip, including the accumulated energies.
        assert restored.counters.as_dict() == response.counters.as_dict()
        assert restored.energy.components == response.energy.components
        assert restored.energy.label == response.energy.label
        assert dict(restored.energy.group_map) == dict(response.energy.group_map)
        assert restored.timesteps == response.timesteps
        assert restored.backend == response.backend
        assert restored.batch_size == response.batch_size
        assert restored.jobs == response.jobs

    def test_request_round_trip(self, workload):
        _, _, inputs, labels = workload
        request = InferenceRequest(
            inputs=inputs, labels=labels, timesteps=9, sample_offset=5
        )
        restored = InferenceRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        np.testing.assert_array_equal(restored.batch, request.batch)
        np.testing.assert_array_equal(restored.labels, request.labels)
        assert restored.timesteps == 9
        assert restored.sample_offset == 5

    def test_event_counters_round_trip_and_unknown_keys(self):
        counters = EventCounters(crossbar_evaluations=3, switch_hops=7.0)
        assert EventCounters.from_dict(counters.as_dict()).as_dict() == counters.as_dict()
        with pytest.raises(ValueError, match="unknown counter"):
            EventCounters.from_dict({"warp_drive_engagements": 1.0})

    def test_energy_report_round_trip(self):
        report = EnergyReport(label="unit", group_map={"a": "g"})
        report.add("a", 1.2345678901234567e-9)
        report.add("b", 0.1 + 0.2)  # a float that exposes lossy serialisation
        restored = EnergyReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert restored.components == report.components
        assert restored.label == "unit"
        assert dict(restored.group_map) == {"a": "g"}

    def test_schema_version_guard(self):
        with pytest.raises(ValueError, match="schema version"):
            InferenceResponse.from_dict({"schema_version": 99})


class TestEncoderState:
    def test_shard_encoding_matches_full_batch_slice(self):
        state = EncoderState(kind="poisson", seed=13)
        values = np.random.default_rng(0).random((10, 6))
        full = state.encode(values, timesteps=8)
        part = state.shard(4).encode(values[4:9], timesteps=8)
        np.testing.assert_array_equal(part, full[:, 4:9])

    def test_deterministic_kind_is_offset_invariant(self):
        state = EncoderState(kind="deterministic", seed=0)
        values = np.random.default_rng(1).random((5, 4))
        np.testing.assert_array_equal(
            state.encode(values, 6), state.shard(3).encode(values, 6)
        )

    def test_state_round_trip_and_validation(self):
        state = EncoderState(kind="poisson", seed=3, max_rate=0.5, sample_offset=2)
        assert EncoderState.from_dict(state.to_dict()) == state
        with pytest.raises(ValueError, match="kind"):
            EncoderState(kind="laser")
        with pytest.raises(ValueError, match="shard start"):
            state.shard(-1)


class TestExperimentIntegration:
    def test_evaluate_chip_jobs_parity(self):
        from repro.experiments import ExperimentSettings, WorkloadContext

        settings = ExperimentSettings(
            timesteps=4,
            eval_samples=4,
            train_samples=16,
            test_samples=8,
            train_epochs=0,
            network_scale=0.15,
            seed=11,
        )
        context = WorkloadContext(settings)
        workload = context.prepare("mnist-mlp")
        sharded = context.evaluate_chip(workload, crossbar_size=32, jobs=2)
        again = context.evaluate_chip(workload, crossbar_size=32, jobs=4)
        np.testing.assert_array_equal(sharded.predictions, again.predictions)
        np.testing.assert_array_equal(sharded.spike_counts, again.spike_counts)
        assert sharded.accuracy == again.accuracy
        assert sharded.energy.total_j == pytest.approx(
            again.energy.total_j, rel=ENERGY_RTOL
        )
