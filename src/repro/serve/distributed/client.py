"""Remote chip clients: the ``ChipSession`` surface over a socket.

Two client shapes speak the chip server's wire protocol (see
:mod:`repro.serve.schema` for the envelope and the binary frame):

* :class:`RemoteSession` — one connection, strict request/reply, the same
  ``infer(InferenceRequest) -> InferenceResponse`` contract as a local
  :class:`~repro.serve.ChipSession`.  Idempotent ops (``ping`` / ``info`` /
  ``infer`` — inference is a pure function of the request) transparently
  reconnect and retry once when the server restarts under the session.
* :class:`PipelinedSession` — the async/pipelined mode: a small pool of
  connections, each carrying many tagged requests in flight at once.
  :meth:`PipelinedSession.submit` returns a
  :class:`concurrent.futures.Future` immediately, so callers overlap
  network and compute (and give the server's dynamic batcher something to
  coalesce); the blocking :meth:`PipelinedSession.infer` /
  :meth:`PipelinedSession.infer_many` adapters sit on top.

Both clients negotiate the wire carrier on connect: a version-less JSON
ping reveals the server's protocol version (every reply envelope carries
``"v"``), and a peer speaking protocol 3 switches the connection to binary
frames — raw little-endian array payloads instead of number-by-number JSON
text.  Older servers keep getting newline-delimited JSON unchanged, and
``wire="json"`` forces the fallback explicitly.  Reconnects renegotiate, so
a server upgraded (or downgraded) under a live session is picked up on the
next retry.

Both clients are drop-in gateway endpoints (they expose ``capacity`` /
``backend`` / ``timesteps`` from the server's ``info``), and both return
responses bit-identical to a local run — the wire round trip is lossless.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import socket
import threading
import time
from concurrent.futures import Future, InvalidStateError

from repro.serve.retry import RetryBudget, RetryBudgetExhausted, retry_backoff
from repro.serve.schema import (
    FRAME_HEADER_SIZE,
    FRAME_MAGIC,
    PROTOCOL_VERSION,
    InferenceRequest,
    InferenceResponse,
    decode_frame_payload,
    encode_frame,
    parse_frame_header,
    request_envelope,
)

__all__ = [
    "CancellableFuture",
    "PipelinedSession",
    "RemoteServerError",
    "RemoteSession",
    "parse_endpoint",
    "split_endpoints",
]


class RemoteServerError(RuntimeError):
    """The server answered a request with ``ok: false``.

    ``code`` carries the server's structured error code when it supplied
    one — ``"overloaded"`` (request shed by admission control),
    ``"deadline_exceeded"`` (deadline expired before dispatch) or
    ``"cancelled"`` — and is ``None`` for unstructured errors, so callers
    can branch on the failure class without parsing the message text.
    """

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        self.code = code


def _error_from_reply(reply: dict) -> RemoteServerError:
    """Build the client-side error for an ``ok: false`` reply envelope."""
    code = reply.get("code")
    return RemoteServerError(
        str(reply.get("error", "unknown server error")),
        code=code if isinstance(code, str) else None,
    )


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """Parse ``"host:port"`` into ``(host, port)`` with actionable errors.

    IPv6 literals use the bracketed form ``[::1]:7070``; the brackets are
    the endpoint syntax only and are stripped from the returned host, which
    is what :func:`socket.create_connection` expects.

    Every rejection names the offending endpoint string: a bad port buried
    in a comma-separated ``--endpoint`` list must be identifiable from the
    message alone.
    """
    text = str(endpoint).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"endpoint must look like HOST:PORT (for example 127.0.0.1:7070), "
            f"got {endpoint!r}"
        )
    if host.startswith("["):
        if not host.endswith("]") or len(host) < 3:
            raise ValueError(
                f"bracketed IPv6 endpoint must look like [ADDR]:PORT "
                f"(for example [::1]:7070), got {endpoint!r}"
            )
        host = host[1:-1]
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"endpoint port must be an integer, got {port_text!r} in {endpoint!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ValueError(
            f"endpoint port must be in [1, 65535], got {port} in {endpoint!r}"
        )
    return host, port


def split_endpoints(endpoints: str) -> list[str]:
    """Split a (possibly comma-separated) endpoint option, validating each part."""
    parts = [part.strip() for part in str(endpoints).split(",") if part.strip()]
    if not parts:
        raise ValueError(
            f"endpoint must look like HOST:PORT (or a comma-separated list of "
            f"them), got {endpoints!r}"
        )
    for part in parts:
        parse_endpoint(part)  # raises with an actionable message
    return parts


def _connect_with_wait(factory, wait: float):
    """Retry ``factory()`` on connection errors for up to ``wait`` seconds."""
    deadline = time.monotonic() + wait
    while True:
        try:
            return factory()
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


# -- wire carrier negotiation -------------------------------------------------------

#: Envelopes from this protocol version up ride the binary frame carrier.
_BINARY_MIN_VERSION = 3

#: Highest version a ``wire="json"`` client declares (keeps the connection
#: on the JSON carrier even against a frame-capable server).
_JSON_MAX_VERSION = 2

#: Reconnect backoff: retry *n* sleeps about ``base * 2**n`` seconds,
#: jittered, so clients of a restarting server spread out instead of
#: hammering the listen queue in lockstep.  Kept as a module-level name so
#: tests (and operators) can patch the client's backoff in isolation; the
#: policy itself is the stack-wide helper in :mod:`repro.serve.retry`.
_retry_backoff = retry_backoff


def _negotiated_version(peer_version: int, wire: str) -> int:
    """The envelope version this client declares to a ``peer_version`` server."""
    cap = PROTOCOL_VERSION if wire == "auto" else _JSON_MAX_VERSION
    return max(1, min(cap, peer_version))


def _handshake(file) -> int:
    """Discover the peer's protocol version over a fresh connection.

    Sends a version-less JSON ping — the one envelope every server
    generation accepts (a missing ``"v"`` reads as version 1) — and returns
    the ``"v"`` stamped on the reply.  Even an error reply carries the
    peer's version, so negotiation works against servers that reject the
    ping itself.
    """
    file.write(json.dumps({"op": "ping"}).encode("utf-8") + b"\n")
    file.flush()
    line = file.readline()
    if not line:
        raise ConnectionError(
            "server closed the connection during version negotiation"
        )
    try:
        reply = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ConnectionError(
            f"unparseable version-negotiation reply: {exc}"
        ) from None
    version = reply.get("v", 1) if isinstance(reply, dict) else 1
    return version if isinstance(version, int) and version >= 1 else 1


def _encode_message(
    message: dict[str, object], version: int, *, buffer: bytearray | None = None
):
    """Serialise one request envelope for the negotiated carrier.

    ``message["request"]`` may hold a live :class:`InferenceRequest`: it is
    serialised here, per wire attempt, because only the connection knows
    which carrier (and therefore which array codec) is in force — and a
    retry may land on a renegotiated connection speaking the other one.
    """
    payload = dict(message)
    payload["v"] = version
    binary = version >= _BINARY_MIN_VERSION
    request = payload.get("request")
    if isinstance(request, InferenceRequest):
        payload["request"] = (
            request.to_wire_dict() if binary else request.to_dict()
        )
    if binary:
        return encode_frame(payload, buffer=buffer)
    return json.dumps(payload).encode("utf-8") + b"\n"


def _read_exact(file, count: int) -> bytes:
    data = file.read(count)
    if data is None or len(data) < count:
        raise ConnectionError("server closed the connection mid-frame")
    return data


def _read_frame_reply(file, first: bytes = b"") -> dict[str, object]:
    """Read one reply frame from a blocking file (``first`` = peeked bytes).

    Frame-level corruption surfaces as :class:`ConnectionError`: the byte
    stream cannot be resynchronised, so the caller must drop the connection
    (and, for idempotent ops, retry on a fresh one).
    """
    header = first + _read_exact(file, FRAME_HEADER_SIZE - len(first))
    try:
        meta_len, payload_len = parse_frame_header(header)
    except ValueError as exc:
        raise ConnectionError(f"desynchronised reply stream: {exc}") from None
    meta = _read_exact(file, meta_len)
    payload = _read_exact(file, payload_len)
    try:
        return decode_frame_payload(meta, payload)
    except ValueError as exc:
        raise ConnectionError(f"corrupt reply frame: {exc}") from None


class RemoteSession:
    """A chip session served by a remote :class:`ChipServer`.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Per-request socket timeout in seconds (inference on a large batch is
        slow; size accordingly).
    retries:
        Reconnect-and-resend attempts for idempotent ops after a connection
        failure (a server restart leaves the session holding a dead socket;
        one retry rides out a reboot).  ``0`` disables the resilience.
        Retries back off with jitter so a rebooting server is not hammered.
    wire:
        ``"auto"`` (default) negotiates the binary frame carrier with a
        protocol-3 server and falls back to JSON against older ones;
        ``"json"`` forces the JSON carrier regardless of what the server
        speaks.

    The session holds one persistent connection; requests are serialised on
    it (one message out, one message in).  Use one ``RemoteSession`` per
    thread — or :class:`PipelinedSession` — for concurrent callers.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 120.0,
        retries: int = 1,
        wire: str = "auto",
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if wire not in ("auto", "json"):
            raise ValueError(f"wire must be 'auto' or 'json', got {wire!r}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.wire = wire
        self._socket: socket.socket | None = None
        self._file = None
        self._ids = itertools.count(1)
        self._info: dict[str, object] | None = None
        self._closed = False
        self._peer_version = 1
        # Reused across binary encodes: the socket write completes before
        # the next request is serialised, so one buffer serves the session.
        self._encode_buffer = bytearray()
        self._connect()

    @classmethod
    def connect(
        cls,
        endpoint: str | tuple[str, int],
        *,
        timeout: float = 120.0,
        retries: int = 1,
        wait: float = 0.0,
        wire: str = "auto",
    ) -> "RemoteSession":
        """Connect to ``"host:port"`` (or a ``(host, port)`` tuple).

        ``wait`` keeps retrying for up to that many seconds while the server
        boots (0 means a single attempt).
        """
        host, port = (
            parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        )
        return _connect_with_wait(
            lambda: cls(host, port, timeout=timeout, retries=retries, wire=wire),
            wait,
        )

    # -- connection management ----------------------------------------------------

    @property
    def wire_version(self) -> int:
        """Envelope version negotiated on the current connection."""
        return _negotiated_version(self._peer_version, self.wire)

    def _connect(self) -> None:
        self._socket = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._socket.makefile("rwb")
        try:
            # Every (re)connect renegotiates: the server behind the address
            # may have been upgraded or downgraded since the last attempt.
            self._peer_version = _handshake(self._file)
        except (ConnectionError, OSError):
            self._drop_connection()
            raise

    def _drop_connection(self) -> None:
        file, sock = self._file, self._socket
        self._file = self._socket = None
        try:
            if file is not None:
                file.close()
        except OSError:
            pass
        finally:
            if sock is not None:
                sock.close()

    # -- protocol -----------------------------------------------------------------

    def _call(
        self, message: dict[str, object], *, idempotent: bool = True
    ) -> dict[str, object]:
        """One request/reply round trip, reconnecting on a dead connection.

        Idempotent ops are resent once per configured retry after a
        connection-level failure (server restart, dead socket); a
        :class:`RemoteServerError` is a *successful* round trip and is never
        retried.  When the message carries an :class:`InferenceRequest` with
        a :class:`RetryBudget`, that budget overrides the session's
        ``retries`` knob: reconnect resends consume from the request's
        shared pool and exhaustion raises :class:`RetryBudgetExhausted`.
        """
        if self._closed:
            raise RuntimeError("remote session is closed")
        budget: RetryBudget | None = None
        carried = message.get("request")
        if idempotent and isinstance(carried, InferenceRequest):
            budget = carried.retry_budget
        attempts = 1 + (self.retries if idempotent else 0)
        last_error: Exception | None = None
        attempt = 0
        while True:
            try:
                if self._file is None:
                    self._connect()
                request_id = next(self._ids)
                payload = dict(message)
                payload["id"] = request_id
                version = self.wire_version
                binary = version >= _BINARY_MIN_VERSION
                self._file.write(
                    _encode_message(payload, version, buffer=self._encode_buffer)
                )
                self._file.flush()
                # The reply mirrors the request's carrier, so the read side
                # is deterministic: frame out means frame back.
                if binary:
                    reply = _read_frame_reply(self._file)
                else:
                    line = self._file.readline()
                    if not line:
                        raise ConnectionError(
                            f"chip server at {self.host}:{self.port} closed "
                            f"the connection"
                        )
                    reply = json.loads(line.decode("utf-8"))
                if reply.get("id") not in (None, request_id):
                    raise ConnectionError(
                        f"chip server at {self.host}:{self.port} answered request "
                        f"{request_id} with id {reply.get('id')!r} (desynchronised "
                        f"connection)"
                    )
                if not reply.get("ok"):
                    raise _error_from_reply(reply)
                return reply
            except TimeoutError:
                # A slow server is not a dead one: resending would duplicate
                # the work and mask the real problem.  The connection is
                # desynchronised (the late reply is still coming), so drop
                # it, but surface the timeout as-is.
                self._drop_connection()
                raise
            except (ConnectionError, OSError) as exc:
                self._drop_connection()
                last_error = exc
                if budget is not None:
                    consumed = budget.try_consume()
                    if consumed is None:
                        raise budget.exhausted(exc)
                    time.sleep(budget.backoff_s(consumed))
                elif attempt + 1 < attempts:
                    # A restarting server needs a beat to come back; an
                    # immediate resend just hammers the dead port and burns
                    # the retry budget inside the boot window.
                    time.sleep(_retry_backoff(attempt))
                else:
                    break
                attempt += 1
        assert last_error is not None
        raise ConnectionError(
            f"chip server at {self.host}:{self.port} unreachable after "
            f"{attempts} attempt(s): {last_error}"
        ) from last_error

    # -- the session surface ------------------------------------------------------

    def ping(self) -> bool:
        """Round-trip a no-op message."""
        return bool(self._call(request_envelope("ping")).get("pong"))

    def info(self, refresh: bool = False) -> dict[str, object]:
        """Server metadata: workload, backend, timesteps, jobs, capacity."""
        if self._info is None or refresh:
            self._info = dict(self._call(request_envelope("info"))["info"])
        return self._info

    @property
    def capacity(self) -> int:
        """Worker count of the remote pool (gateway sharding weight)."""
        return int(self.info().get("capacity", 1))

    @property
    def backend(self) -> str:
        """Execution backend of the remote chip."""
        return str(self.info().get("backend", "unknown"))

    @property
    def timesteps(self) -> int:
        """Default rate-coding window of the remote session."""
        return int(self.info().get("timesteps", 0))

    def infer(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> InferenceResponse:
        """Run one batch on the remote chip (same contract as ChipSession).

        ``deadline_s`` rides the envelope to the server, which sheds the
        request with a structured ``deadline_exceeded`` error if that much
        time passes before dispatch (see :class:`RemoteServerError.code`).
        """
        # The live request rides the envelope; _call serialises it with the
        # codec of whichever carrier the (possibly reconnected) connection
        # negotiated.
        fields: dict[str, object] = {"request": request}
        if deadline_s is not None:
            fields["deadline_s"] = float(deadline_s)
        reply = self._call(request_envelope("infer", **fields))
        return InferenceResponse.from_dict(reply["response"])

    def metrics(self) -> dict[str, object]:
        """Scrape the server's metrics registry (``metrics`` op).

        Returns the structured payload: a JSON-safe registry ``snapshot``
        plus the same data rendered as Prometheus ``text`` — identical to
        what the server's HTTP exposition endpoint serves.
        """
        return dict(self._call(request_envelope("metrics"))["metrics"])

    def drain_server(self) -> dict[str, object]:
        """Retire the server gracefully (idempotent ``drain`` op).

        The server stops admitting new ``infer`` requests (they answer a
        structured ``draining`` error), finishes and delivers everything
        already admitted, then exits its serving loop.
        """
        return self._call(request_envelope("drain"), idempotent=False)

    def shutdown_server(self) -> None:
        """Ask the server process to stop serving (clean remote teardown).

        Never retried: a connection that drops after the send most likely
        means the shutdown worked.
        """
        self._call(request_envelope("shutdown"), idempotent=False)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._closed = True
        self._drop_connection()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- pipelined client ---------------------------------------------------------------


class _PipelinedConnection:
    """One socket carrying many tagged requests; a reader thread routes replies."""

    def __init__(self, host: str, port: int, timeout: float, wire: str = "auto"):
        self.host = host
        self.port = port
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._file = self._socket.makefile("rwb")
        try:
            # Negotiate while the establishment timeout still governs the
            # socket: a wedged server fails the constructor instead of
            # hanging a pool slot forever.
            self.peer_version = _handshake(self._file)
        except (ConnectionError, OSError):
            with contextlib.suppress(OSError):
                self._file.close()
            self._socket.close()
            raise
        self.wire_version = _negotiated_version(self.peer_version, wire)
        # The timeout above governs connection establishment only.  The
        # reader must block indefinitely between replies: a pipelined
        # connection is legitimately idle for long stretches, and a read
        # timeout firing then would wrongly kill every in-flight request.
        # Per-request deadlines belong to future.result(timeout=...).
        self._socket.settimeout(None)
        self._lock = threading.Lock()
        self._pending: dict[object, Future] = {}
        self._dead = False
        self._reader = threading.Thread(
            target=self._read_loop, name="chip-client-reader", daemon=True
        )
        self._reader.start()

    @property
    def dead(self) -> bool:
        return self._dead

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    def send(self, message: dict[str, object], future: Future) -> None:
        """Register ``future`` under the message id and put it on the wire."""
        request_id = message["id"]
        # Serialise outside the lock — encoding a megabyte batch must not
        # stall other senders.  No shared encode buffer here: several
        # threads may be in this section at once.
        data = _encode_message(message, self.wire_version)
        with self._lock:
            if self._dead:
                raise ConnectionError(
                    f"connection to {self.host}:{self.port} is down"
                )
            self._pending[request_id] = future
            try:
                self._file.write(data)
                self._file.flush()
            except (OSError, ValueError) as exc:
                del self._pending[request_id]
                raise ConnectionError(
                    f"connection to {self.host}:{self.port} failed mid-send: {exc}"
                ) from exc

    def _read_loop(self) -> None:
        try:
            while True:
                # Peek the carrier byte: replies mirror their request's
                # carrier, so a negotiated-binary connection reads frames —
                # but the magic byte is checked per reply rather than
                # assumed, keeping the reader honest about desyncs.
                first = self._file.read(1)
                if not first:
                    break
                if first == FRAME_MAGIC[:1]:
                    reply = _read_frame_reply(self._file, first)
                else:
                    line = first + self._file.readline()
                    if not line.strip():
                        continue
                    reply = json.loads(line.decode("utf-8"))
                with self._lock:
                    future = self._pending.pop(reply.get("id"), None)
                if future is None:
                    continue  # untagged or stale reply; nothing to route
                # A locally-cancelled future may already be done when its
                # (cancelled-error) reply arrives; dropping it is correct.
                with contextlib.suppress(InvalidStateError):
                    if reply.get("ok"):
                        future.set_result(reply)
                    else:
                        future.set_exception(_error_from_reply(reply))
        except (OSError, ValueError):
            pass
        finally:
            self._fail_pending(
                ConnectionError(
                    f"chip server at {self.host}:{self.port} closed the connection"
                )
            )

    def abandon(self, request_id: object) -> None:
        """Forget a pending request (a bounded wait gave up on its reply).

        Without this, every timed-out poll of a wedged-but-connected server
        would leave its future in the routing table forever, inflating
        ``in_flight`` and steering connection selection off real load.  A
        reply that does arrive later is dropped as stale.
        """
        with self._lock:
            self._pending.pop(request_id, None)

    def _fail_pending(self, exc: Exception) -> None:
        with self._lock:
            self._dead = True
            pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    def close(self) -> None:
        with self._lock:
            self._dead = True
        # Unblock the reader first: closing the buffered file while the
        # reader thread sits in readline() would deadlock on the buffer's
        # internal lock until the socket timeout.  shutdown() delivers EOF.
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        if threading.current_thread() is not self._reader:
            self._reader.join(timeout=5.0)
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            self._socket.close()


class CancellableFuture(Future):
    """A result future whose :meth:`cancel` also revokes the remote work.

    :meth:`PipelinedSession.submit` returns these: the future is never in
    the executor sense "running" (replies resolve it from the reader
    thread), so ``cancel()`` succeeds whenever the result has not arrived —
    and on success additionally fires the attached canceller, which sends a
    ``cancel`` op so the server drops the still-queued request instead of
    computing an answer nobody will read.  Waiters see the standard
    :class:`concurrent.futures.CancelledError`.
    """

    _canceller = None
    #: Optional tag the canceller forwards on the wire (``reason`` field of
    #: the ``cancel`` op) so the server can attribute the cancellation —
    #: the gateway stamps ``"hedge"`` on losing hedged attempts.
    cancel_reason: str | None = None

    def cancel(self) -> bool:
        cancelled = super().cancel()
        if cancelled and self._canceller is not None:
            # Best effort: the remote side may already be dispatching (the
            # server then simply completes the work) or the connection may
            # be gone; local cancellation stands either way.
            with contextlib.suppress(Exception):
                self._canceller()
        return cancelled


class PipelinedSession:
    """Pipelined chip client: many requests in flight over a connection pool.

    Parameters
    ----------
    host, port:
        Server address.
    connections:
        Size of the connection pool (requests are spread across the least
        loaded live connections; one is plenty for pure pipelining, two or
        three overlap TCP flow control on large batches).
    timeout:
        Connection-establishment timeout in seconds.  Established
        connections wait indefinitely for replies (they are legitimately
        idle between batches); put per-request deadlines on
        ``future.result(timeout=...)``.
    wire:
        ``"auto"`` (default) negotiates the binary frame carrier per
        connection and falls back to JSON against pre-v3 servers;
        ``"json"`` forces the JSON carrier.

    :meth:`submit` returns a :class:`CancellableFuture` resolving to the
    :class:`InferenceResponse` — cancelling it also sends a ``cancel`` op so
    the server drops the still-queued work — and accepts a per-request
    ``deadline_s`` that the server enforces before dispatch; requests
    already on a connection that dies are transparently resubmitted once on
    a fresh connection (inference is idempotent — a pure function of the
    request).  The blocking :meth:`infer` / :meth:`infer_many` adapters
    mirror the ``ChipSession`` surface, so a pipelined remote is also a
    valid gateway endpoint.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connections: int = 2,
        timeout: float = 120.0,
        wire: str = "auto",
    ):
        if connections < 1:
            raise ValueError(f"connections must be >= 1, got {connections}")
        if wire not in ("auto", "json"):
            raise ValueError(f"wire must be 'auto' or 'json', got {wire!r}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.wire = wire
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._info: dict[str, object] | None = None
        self._closed = False
        # Fail fast like RemoteSession: the first connection opens eagerly.
        self._connections: list[_PipelinedConnection | None] = [
            _PipelinedConnection(host, port, timeout, wire)
        ] + [None] * (connections - 1)

    @classmethod
    def connect(
        cls,
        endpoint: str | tuple[str, int],
        *,
        connections: int = 2,
        timeout: float = 120.0,
        wait: float = 0.0,
        wire: str = "auto",
    ) -> "PipelinedSession":
        """Connect to ``"host:port"`` (or a tuple), waiting out a server boot."""
        host, port = (
            parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        )
        return _connect_with_wait(
            lambda: cls(
                host, port, connections=connections, timeout=timeout, wire=wire
            ),
            wait,
        )

    # -- connection pool ----------------------------------------------------------

    @property
    def wire_version(self) -> int:
        """Envelope version negotiated on the live connections (max seen)."""
        with self._lock:
            versions = [
                connection.wire_version
                for connection in self._connections
                if connection is not None and not connection.dead
            ]
        return max(versions, default=_negotiated_version(1, self.wire))

    def _pick_connection(self) -> _PipelinedConnection:
        """The least-loaded live connection, (re)opening slots as needed."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pipelined session is closed")
            best: _PipelinedConnection | None = None
            best_load = 0
            open_slot: int | None = None
            for index, connection in enumerate(self._connections):
                if connection is None or connection.dead:
                    if open_slot is None:
                        open_slot = index
                    continue
                load = connection.in_flight
                if best is None or load < best_load:
                    best, best_load = connection, load
            # An idle live connection (or no free slot) means no reconnect.
            if best is not None and (best_load == 0 or open_slot is None):
                return best
            if open_slot is None:
                raise ConnectionError(
                    f"no usable connection to {self.host}:{self.port}"
                )  # pragma: no cover - slots always exist
        # Prefer opening the idle slot over queueing behind live traffic —
        # but connect OUTSIDE the session lock: establishment can block for
        # the whole timeout and must not stall submits that could ride the
        # healthy connections.
        fresh = _PipelinedConnection(self.host, self.port, self.timeout, self.wire)
        with self._lock:
            if self._closed:
                fresh.close()
                raise RuntimeError("pipelined session is closed")
            current = self._connections[open_slot]
            if current is not None and not current.dead:
                # Another thread reconnected this slot first; use theirs.
                fresh.close()
                return current
            self._connections[open_slot] = fresh
        return fresh

    # -- protocol -----------------------------------------------------------------

    def _submit_op(
        self,
        op: str,
        *,
        retry: bool = True,
        sent: dict[str, object] | None = None,
        budget: RetryBudget | None = None,
        **fields: object,
    ) -> Future:
        """Send one envelope, returning a future for its reply envelope.

        ``sent`` (when given) is updated in place with the connection and
        request id of the most recent wire attempt, which is what a later
        ``cancel`` op must target.  With a ``budget``, dead-connection
        resubmits are bounded by the request's shared retry pool (with
        jittered backoff) instead of the default single immediate resend.
        """
        outer: Future = Future()
        self._attempt(
            op, fields, outer, retries_left=1 if retry else 0, sent=sent, budget=budget
        )
        return outer

    def _retry_later(
        self,
        op: str,
        fields: dict[str, object],
        outer: Future,
        sent: dict[str, object] | None,
        budget: RetryBudget,
        cause: BaseException,
    ) -> None:
        """Budgeted resubmit after a dead connection, backed off on a timer.

        The backoff must never run on the reader thread (it is routing every
        other reply of that connection), so a daemon timer pays the delay.
        """
        consumed = budget.try_consume()
        if consumed is None:
            with contextlib.suppress(InvalidStateError):
                outer.set_exception(budget.exhausted(cause))
            return

        def resend() -> None:
            try:
                self._attempt(op, fields, outer, retries_left=0, sent=sent, budget=budget)
            except Exception as retry_exc:  # noqa: BLE001 - into the future
                with contextlib.suppress(InvalidStateError):
                    outer.set_exception(retry_exc)

        timer = threading.Timer(budget.backoff_s(consumed), resend)
        timer.daemon = True
        timer.start()

    def _attempt(
        self,
        op: str,
        fields: dict[str, object],
        outer: Future,
        retries_left: int,
        sent: dict[str, object] | None = None,
        budget: RetryBudget | None = None,
    ) -> None:
        request_id = next(self._ids)
        message = request_envelope(op, request_id=request_id, **fields)
        inner: Future = Future()

        def relay(done: Future) -> None:
            if outer.done():  # locally cancelled while in flight
                return
            exc = done.exception()
            if isinstance(exc, ConnectionError) and budget is not None:
                # The connection died with this request in flight; resend on
                # a fresh one within the request's retry budget.
                self._retry_later(op, fields, outer, sent, budget, exc)
            elif isinstance(exc, ConnectionError) and retries_left > 0:
                # Legacy single resend (idempotent ops only reach this path).
                try:
                    self._attempt(op, fields, outer, retries_left - 1, sent=sent)
                except Exception as retry_exc:  # noqa: BLE001 - into the future
                    with contextlib.suppress(InvalidStateError):
                        outer.set_exception(retry_exc)
            else:
                with contextlib.suppress(InvalidStateError):
                    if exc is not None:
                        outer.set_exception(exc)
                    else:
                        outer.set_result(done.result())

        inner.add_done_callback(relay)
        try:
            connection = self._pick_connection()
            connection.send(message, inner)
            if sent is not None:
                sent["connection"] = connection
                sent["id"] = request_id
        except ConnectionError as exc:
            if budget is not None:
                self._retry_later(op, fields, outer, sent, budget, exc)
            elif retries_left > 0:
                self._attempt(op, fields, outer, retries_left - 1, sent=sent)
            elif not outer.done():
                with contextlib.suppress(InvalidStateError):
                    outer.set_exception(exc)
        except RuntimeError as exc:  # session closed while retrying
            if not outer.done():
                with contextlib.suppress(InvalidStateError):
                    outer.set_exception(exc)

    # -- the pipelined surface ----------------------------------------------------

    def submit(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> CancellableFuture:
        """Queue one inference; the future resolves to its InferenceResponse.

        ``deadline_s`` rides the envelope: the server sheds the request with
        a structured ``deadline_exceeded`` error if that much time passes
        before dispatch.  The returned :class:`CancellableFuture`'s
        ``cancel()`` additionally sends a ``cancel`` op, so the server drops
        the still-queued work rather than computing an orphaned answer.
        """
        outer = CancellableFuture()
        # The live request rides the fields; each connection's send()
        # serialises it with the codec of its own negotiated carrier.
        fields: dict[str, object] = {"request": request}
        if deadline_s is not None:
            fields["deadline_s"] = float(deadline_s)
        sent: dict[str, object] = {}
        raw = self._submit_op(
            "infer", sent=sent, budget=request.retry_budget, **fields
        )

        def cancel_remote() -> None:
            connection = sent.get("connection")
            request_id = sent.get("id")
            if (
                not isinstance(connection, _PipelinedConnection)
                or connection.dead
                or request_id is None
            ):
                return
            cancel_fields: dict[str, object] = {"target": request_id}
            if outer.cancel_reason is not None:
                cancel_fields["reason"] = str(outer.cancel_reason)
            # Fire and forget: the reply (routed by its own fresh id) lands
            # on a throwaway future nobody waits for.
            connection.send(
                request_envelope(
                    "cancel", request_id=next(self._ids), **cancel_fields
                ),
                Future(),
            )

        outer._canceller = cancel_remote

        def convert(done: Future) -> None:
            if outer.done():  # locally cancelled; the late reply is noise
                return
            try:
                response = InferenceResponse.from_dict(done.result()["response"])
            except Exception as exc:  # noqa: BLE001 - routed into the future
                with contextlib.suppress(InvalidStateError):
                    outer.set_exception(exc)
                return
            with contextlib.suppress(InvalidStateError):
                outer.set_result(response)

        raw.add_done_callback(convert)
        return outer

    def infer(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> InferenceResponse:
        """Blocking single inference (the ``ChipSession`` contract)."""
        return self.submit(request, deadline_s=deadline_s).result()

    def infer_many(
        self,
        requests: list[InferenceRequest],
        *,
        deadline_s: float | None = None,
    ) -> list[InferenceResponse]:
        """Submit every request before collecting any reply (full pipelining).

        The first failure cancels every outstanding future — which also
        revokes the matching still-queued work on the server — instead of
        abandoning it in flight.
        """
        futures = [
            self.submit(request, deadline_s=deadline_s) for request in requests
        ]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                if not future.done():
                    future.cancel()
            raise

    def _bounded_reply(
        self, op: str, timeout: float | None, **fields: object
    ) -> dict[str, object]:
        """One op round trip whose bounded wait cleans up after itself.

        On timeout the pending entry is abandoned on its connection, so a
        wedged-but-connected server cannot inflate ``in_flight`` one leaked
        future per poll.
        """
        sent: dict[str, object] = {}
        raw = self._submit_op(op, sent=sent, **fields)
        try:
            return raw.result(timeout)
        except TimeoutError:
            connection = sent.get("connection")
            if isinstance(connection, _PipelinedConnection):
                connection.abandon(sent.get("id"))
            raise

    def ping(self, timeout: float | None = None) -> bool:
        """Round-trip a no-op message (optionally bounded by ``timeout``)."""
        return bool(self._bounded_reply("ping", timeout).get("pong"))

    def info(
        self, refresh: bool = False, *, timeout: float | None = None
    ) -> dict[str, object]:
        """Server metadata: workload, backend, timesteps, jobs, capacity."""
        if self._info is None or refresh:
            self._info = dict(self._bounded_reply("info", timeout)["info"])
        return self._info

    @property
    def capacity(self) -> int:
        """Worker count of the remote pool (gateway sharding weight)."""
        return int(self.info().get("capacity", 1))

    @property
    def backend(self) -> str:
        """Execution backend of the remote chip."""
        return str(self.info().get("backend", "unknown"))

    @property
    def timesteps(self) -> int:
        """Default rate-coding window of the remote session."""
        return int(self.info().get("timesteps", 0))

    def metrics(self, *, timeout: float | None = None) -> dict[str, object]:
        """Scrape the server's metrics registry (``metrics`` op).

        Returns the structured payload: a JSON-safe registry ``snapshot``
        plus the same data rendered as Prometheus ``text``.
        """
        return dict(self._bounded_reply("metrics", timeout)["metrics"])

    def drain_server(self, *, timeout: float | None = None) -> dict[str, object]:
        """Retire the server gracefully (``drain`` op; never retried).

        Returns the drain acknowledgement (``{"draining": True, ...}``).
        In-flight requests on this session still complete: the server
        answers every admitted request before it exits.
        """
        return self._bounded_reply("drain", timeout, retry=False)

    def shutdown_server(self) -> None:
        """Ask the server process to stop serving (never retried)."""
        self._submit_op("shutdown", retry=False).result()

    def close(self) -> None:
        """Close every connection (idempotent); in-flight requests fail."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections, self._connections = self._connections, []
        for connection in connections:
            if connection is not None:
                connection.close()

    def __enter__(self) -> "PipelinedSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
