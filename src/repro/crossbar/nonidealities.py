"""Crossbar non-ideality models.

Large crossbars are infeasible exactly because of the effects modelled here
(Section 1 of the paper): parasitic wire resistance causes IR drop along rows
and columns, unselected cells leak through sneak paths, and devices exhibit
conductance variation.  RESPARC's answer is to keep individual MCAs small and
recover scale architecturally; these models let the repository quantify *why*
small crossbars are preferred, supporting the technology-aware MCA-size
study.

The models are deliberately first-order analytical approximations — adequate
for relative comparisons across crossbar sizes, which is how the paper uses
the argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_probability

__all__ = ["NonidealityParameters", "CrossbarNonidealities"]


@dataclass(frozen=True)
class NonidealityParameters:
    """Parameters of the first-order non-ideality models.

    Attributes
    ----------
    wire_resistance_ohm:
        Parasitic resistance of one crossbar wire segment (between adjacent
        cross-points).  Zero disables the IR-drop model.
    sneak_leakage_fraction:
        Fraction of an unselected device's conductance that leaks into the
        column during a read (selector imperfection).  Zero disables it.
    read_noise_sigma:
        Relative Gaussian noise applied to column currents per read.
    variation_sigma:
        Relative device-to-device conductance variation (lognormal sigma)
        applied on top of programming.
    """

    wire_resistance_ohm: float = 0.0
    sneak_leakage_fraction: float = 0.0
    read_noise_sigma: float = 0.0
    variation_sigma: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("wire_resistance_ohm", self.wire_resistance_ohm)
        check_probability("sneak_leakage_fraction", self.sneak_leakage_fraction)
        check_non_negative("read_noise_sigma", self.read_noise_sigma)
        check_non_negative("variation_sigma", self.variation_sigma)

    @property
    def ideal(self) -> bool:
        """True when every non-ideality is disabled."""
        return (
            self.wire_resistance_ohm == 0
            and self.sneak_leakage_fraction == 0
            and self.read_noise_sigma == 0
            and self.variation_sigma == 0
        )


@dataclass
class CrossbarNonidealities:
    """Applies non-ideality corrections to crossbar conductances and currents."""

    params: NonidealityParameters = NonidealityParameters()

    def apply_variation(
        self, conductance: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply device-to-device conductance variation."""
        if self.params.variation_sigma == 0:
            return conductance
        factors = rng.lognormal(0.0, self.params.variation_sigma, size=conductance.shape)
        return conductance * factors

    def ir_drop_attenuation(self, rows: int, columns: int, mean_conductance_s: float) -> float:
        """Mean multiplicative attenuation of column currents due to IR drop.

        A first-order model: the voltage seen by the device at position
        ``(i, j)`` is reduced by the cumulative wire drop along its row and
        column.  Averaging over positions gives an attenuation factor

        ``1 / (1 + R_wire * G_cell * (rows + columns) / 2)``

        which decreases (worse) as the crossbar grows — the qualitative
        behaviour that motivates small MCAs.
        """
        r_wire = self.params.wire_resistance_ohm
        if r_wire == 0:
            return 1.0
        loading = r_wire * mean_conductance_s * (rows + columns) / 2.0
        return 1.0 / (1.0 + loading)

    def sneak_current_a(
        self,
        g_unselected_sum_s: float,
        read_voltage_v: float,
    ) -> float:
        """Aggregate sneak-path current contributed by unselected devices (A)."""
        frac = self.params.sneak_leakage_fraction
        if frac == 0:
            return 0.0
        return frac * g_unselected_sum_s * read_voltage_v

    def apply_read_noise(
        self, currents: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply relative Gaussian read noise to column currents."""
        sigma = self.params.read_noise_sigma
        if sigma == 0:
            return currents
        scale = sigma * np.maximum(np.abs(currents), np.finfo(float).tiny)
        return currents + rng.normal(0.0, scale)

    def relative_output_error(
        self, rows: int, columns: int, mean_conductance_s: float
    ) -> float:
        """Estimate of the relative computation error for a crossbar size.

        Combines the IR-drop attenuation error and the sneak-leakage floor
        into a single scalar used by the technology-aware MCA-size selection
        (larger crossbars → larger error).
        """
        attenuation_error = 1.0 - self.ir_drop_attenuation(rows, columns, mean_conductance_s)
        sneak_error = self.params.sneak_leakage_fraction * (rows - 1) / max(rows, 1)
        return float(attenuation_error + sneak_error)
