"""Socket chip server: newline-delimited JSON inference over TCP.

:class:`ChipServer` wraps any inference target that answers
``infer(InferenceRequest) -> InferenceResponse`` — a
:class:`~repro.serve.ChipSession`, a :class:`~repro.serve.ChipPool`, even a
gateway — behind a tiny line-oriented protocol that stdlib clients can speak:

* client sends one JSON object per line: ``{"op": "infer", "request":
  {...}}``, ``{"op": "info"}``, ``{"op": "ping"}`` or ``{"op": "shutdown"}``;
* server answers one JSON object per line: ``{"ok": true, ...}`` on success
  or ``{"ok": false, "error": "..."}`` on failure — malformed JSON, schema
  violations and inference errors all surface as error replies rather than
  dropped connections.

The payloads are exactly the serve-schema dicts, so a response read off the
wire is lossless (`InferenceResponse.from_dict`), and the numbers a remote
client sees are bit-identical to a local run.  Connections are handled on
daemon threads; the pool's own lock serialises actual chip work.

:func:`load_benchmark_workload` builds a servable SNN from the benchmark
registry (network → synthetic dataset → ANN→SNN conversion), which is what
``python -m repro.serve.distributed serve --workload mnist-mlp`` uses.
"""

from __future__ import annotations

import json
import socketserver
import threading
from dataclasses import dataclass

import numpy as np

from repro.datasets import make_dataset
from repro.serve.schema import SCHEMA_VERSION, InferenceRequest
from repro.snn.conversion import SpikingNetwork, convert_to_snn
from repro.workloads import get_benchmark

__all__ = ["ChipServer", "ServingWorkload", "load_benchmark_workload"]


@dataclass
class ServingWorkload:
    """A benchmark prepared for serving: the SNN plus its evaluation split."""

    name: str
    snn: SpikingNetwork
    test_inputs: np.ndarray
    test_labels: np.ndarray


def load_benchmark_workload(
    benchmark: str,
    *,
    scale: float = 1.0,
    seed: int = 7,
    train_samples: int = 64,
    test_samples: int = 32,
) -> ServingWorkload:
    """Build a servable SNN for a registered MLP benchmark.

    Deterministic in ``(benchmark, scale, seed, train_samples)``: a server
    and a client that load the same workload with the same arguments hold
    the same network, which is what makes remote results comparable to local
    ones.
    """
    spec = get_benchmark(benchmark)
    if not spec.is_mlp:
        raise ValueError(
            f"{benchmark!r} is not an MLP; the chip server executes fully "
            f"connected networks only (choose from the *-mlp benchmarks)"
        )
    network = spec.build(scale=scale, seed=seed)
    dataset = make_dataset(
        spec.dataset, train_samples=train_samples, test_samples=test_samples, seed=seed
    )
    train_inputs = dataset.train_images.reshape(dataset.train_images.shape[0], -1)
    test_inputs = dataset.test_images.reshape(dataset.test_images.shape[0], -1)
    snn = convert_to_snn(network, train_inputs[: min(32, len(train_inputs))])
    return ServingWorkload(
        name=benchmark,
        snn=snn,
        test_inputs=test_inputs,
        test_labels=dataset.test_labels,
    )


class _ChipTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _ChipRequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            reply = self.server.chip_server._handle_line(line.decode("utf-8"))
            self.wfile.write(reply.encode("utf-8") + b"\n")
            self.wfile.flush()


class ChipServer:
    """Serve an inference target on a TCP port.

    Parameters
    ----------
    target:
        Anything with ``infer(InferenceRequest) -> InferenceResponse``.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`address`).
    workload:
        Human-readable workload name reported by the ``info`` op.

    Use :meth:`serve_forever` to block, or :meth:`start` to serve on a
    background thread; :meth:`close` (or the context manager) tears down
    either way.
    """

    def __init__(
        self,
        target,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workload: str = "custom",
    ):
        self.target = target
        self.workload = workload
        self._tcp = _ChipTCPServer((host, port), _ChipRequestHandler)
        self._tcp.chip_server = self
        self._thread: threading.Thread | None = None
        # Connections are handled on parallel threads, but bare targets (a
        # structural ChipSession mutates live chip state per run) are not
        # thread-safe — serialise inference here.  Pools/gateways carry
        # their own lock; the double acquisition is uncontended.
        self._infer_lock = threading.Lock()
        self._serving = False
        self._closed = False

    # -- introspection ------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint(self) -> str:
        """The bound address as a ``host:port`` string."""
        host, port = self.address
        return f"{host}:{port}"

    def info(self) -> dict[str, object]:
        """Metadata reported to clients (duck-typed off the target)."""
        session = getattr(self.target, "session", self.target)
        jobs = int(getattr(self.target, "jobs", 1))
        info: dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "workload": self.workload,
            "backend": getattr(session, "backend", "unknown"),
            "timesteps": int(getattr(session, "timesteps", 0)),
            "jobs": jobs,
            # Capacity drives gateway sharding weights; a pool's capacity is
            # its worker count.
            "capacity": jobs,
        }
        executor = getattr(self.target, "executor", None)
        if executor is not None:
            info["executor"] = executor
        return info

    # -- protocol -----------------------------------------------------------------

    def _handle_line(self, line: str) -> str:
        try:
            try:
                message = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"malformed request line: {exc}") from None
            if not isinstance(message, dict):
                raise ValueError("request line must be a JSON object")
            op = message.get("op")
            if op == "ping":
                result: dict[str, object] = {"pong": True}
            elif op == "info":
                result = {"info": self.info()}
            elif op == "infer":
                payload = message.get("request")
                if not isinstance(payload, dict):
                    raise ValueError('infer needs a "request" object payload')
                request = InferenceRequest.from_dict(payload)
                with self._infer_lock:
                    response = self.target.infer(request)
                result = {"response": response.to_dict()}
            elif op == "shutdown":
                # shutdown() must not run on the serve_forever thread; the
                # handler thread (ThreadingTCPServer) is safe.
                threading.Thread(target=self._tcp.shutdown, daemon=True).start()
                result = {"stopping": True}
            else:
                raise ValueError(
                    f"unknown op {op!r}; expected ping, info, infer or shutdown"
                )
            return json.dumps({"ok": True, **result})
        except Exception as exc:  # noqa: BLE001 - every failure becomes a reply
            return json.dumps({"ok": False, "error": f"{type(exc).__name__}: {exc}"})

    # -- lifecycle ----------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` or a shutdown op."""
        self._serving = True
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "ChipServer":
        """Serve on a background daemon thread and return self."""
        self._serving = True
        self._thread = threading.Thread(
            target=self.serve_forever, name="chip-server", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # shutdown() waits on serve_forever's exit event and would block
        # forever on a server that never served.
        if self._serving:
            self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ChipServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
