"""Fig. 10 — the SNN benchmark table.

Regenerates the six-row benchmark table (application, dataset, connectivity,
layers, neurons, synapses), printing the reconstructed totals next to the
published ones, and times the construction of all six networks.
"""

from __future__ import annotations

from repro.workloads import BENCHMARKS


def _build_table() -> list[dict[str, object]]:
    rows = []
    for spec in BENCHMARKS.values():
        network = spec.build()
        rows.append(
            {
                "benchmark": spec.name,
                "application": spec.application,
                "connectivity": spec.connectivity,
                "layers_paper": spec.paper_layers,
                "neurons": network.neuron_count,
                "neurons_paper": spec.paper_neurons,
                "synapses": network.synapse_count,
                "synapses_paper": spec.paper_synapses,
            }
        )
    return rows


def test_fig10_benchmark_table(benchmark):
    """Regenerate the Fig. 10 benchmark table."""
    rows = benchmark(_build_table)
    print("\nFig. 10 — SNN benchmarks (reconstructed vs paper)")
    print(f"  {'benchmark':<14} {'type':<5} {'neurons':>9} {'paper':>9} {'synapses':>10} {'paper':>10}")
    for row in rows:
        print(
            f"  {row['benchmark']:<14} {row['connectivity']:<5} {row['neurons']:>9} "
            f"{row['neurons_paper']:>9} {row['synapses']:>10} {row['synapses_paper']:>10}"
        )
    assert len(rows) == 6
    for row in rows:
        assert row["neurons"] == row["neurons_paper"]
        deviation = abs(row["synapses"] - row["synapses_paper"]) / row["synapses_paper"]
        assert deviation < 0.05
