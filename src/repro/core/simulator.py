"""Structural chip simulation driver.

Runs a :class:`~repro.core.resparc.ResparcChip` over a batch of inputs for a
full rate-coding window, collects the chip's component-level event counters
and converts them into the same :class:`~repro.energy.model.EnergyReport`
the analytical model produces, so the two models can be compared directly
on MLP workloads.

Two execution backends are available behind the same interface:

* ``backend="structural"`` — the reference path: one sample at a time
  through the instantiated component hierarchy (packets, buffers, switches).
* ``backend="vectorized"`` — the fast path: the chip is compiled once
  (:mod:`repro.fastpath`) and the whole batch advances through NumPy array
  ops.  Predictions and event counts are identical to the structural path;
  energy totals agree to floating-point accumulation order.  The
  cross-backend contract is enforced by ``tests/test_backend_parity.py``.

Since the serving redesign, :class:`ChipSimulator` and :func:`simulate` are
thin adapters over :class:`repro.serve.ChipSession` (which owns the backend
execution machinery); they are kept for the one-shot batch-run shape the
tests and examples use.  Long-lived callers should hold a session — or a
:class:`repro.serve.ChipPool` for sharded batches — directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ArchitectureConfig
from repro.core.resparc import ResparcChip
from repro.core.stats import EventCounters
from repro.energy.components import DEFAULT_LIBRARY, ComponentLibrary
from repro.energy.model import EnergyReport
from repro.snn.conversion import SpikingNetwork
from repro.utils.validation import check_positive

__all__ = ["ChipRunResult", "ChipSimulator", "CHIP_BACKENDS", "simulate"]

#: Execution backends accepted by :class:`ChipSimulator` and :func:`simulate`.
CHIP_BACKENDS = ("structural", "vectorized")


@dataclass(frozen=True)
class ChipRunResult:
    """Outcome of running a batch of samples on the structural chip."""

    predictions: np.ndarray
    spike_counts: np.ndarray
    accuracy: float | None
    counters: EventCounters
    energy: EnergyReport
    timesteps: int
    backend: str = "structural"


@dataclass
class ChipSimulator:
    """Drives a structurally instantiated chip over encoded spike trains.

    A thin adapter over :class:`repro.serve.ChipSession` in legacy stream
    mode: the simulator's ``rng`` is consumed by chip building and spike
    encoding in call order, so results are identical to pre-serve releases.
    """

    config: ArchitectureConfig = field(default_factory=ArchitectureConfig)
    library: ComponentLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)
    timesteps: int = 32
    encoder: str = "deterministic"
    backend: str = "structural"
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        check_positive("timesteps", self.timesteps)
        if self.encoder not in ("poisson", "deterministic"):
            raise ValueError(f"encoder must be 'poisson' or 'deterministic', got {self.encoder!r}")
        if self.backend not in CHIP_BACKENDS:
            raise ValueError(
                f"backend must be one of {CHIP_BACKENDS}, got {self.backend!r}"
            )

    def build_chip(self, snn: SpikingNetwork) -> ResparcChip:
        """Instantiate and program a chip for a dense spiking network."""
        return ResparcChip.from_spiking_network(snn, config=self.config, rng=self.rng)

    def run(
        self,
        snn: SpikingNetwork,
        inputs: np.ndarray,
        labels: np.ndarray | None = None,
        chip: ResparcChip | None = None,
    ) -> ChipRunResult:
        """Run a batch of flattened inputs through the selected backend."""
        from repro.serve.schema import InferenceRequest
        from repro.serve.session import CONFIG_MISMATCH_ERROR, ChipSession

        if chip is not None and chip.config != self.config:
            raise ValueError(CONFIG_MISMATCH_ERROR)
        session = ChipSession(
            snn,
            chip=chip,
            config=self.config,
            library=self.library,
            timesteps=self.timesteps,
            encoder=self.encoder,
            backend=self.backend,
            rng=self.rng,
        )
        response = session.infer(InferenceRequest(inputs=inputs, labels=labels))
        return response.as_run_result()


def simulate(
    snn: SpikingNetwork,
    inputs: np.ndarray,
    labels: np.ndarray | None = None,
    *,
    backend: str = "structural",
    config: ArchitectureConfig | None = None,
    library: ComponentLibrary | None = None,
    timesteps: int = 32,
    encoder: str = "deterministic",
    rng: np.random.Generator | None = None,
    chip: ResparcChip | None = None,
) -> ChipRunResult:
    """One-call chip simulation facade with backend selection.

    Builds a :class:`ChipSimulator` for the given configuration and runs the
    batch; ``backend`` picks the structural reference path or the vectorized
    fast path (both produce a :class:`ChipRunResult` with directly comparable
    counters and energy).  When a prebuilt ``chip`` is supplied and ``config``
    is not, the chip's own configuration is used; supplying both with
    mismatched configurations is rejected here, at the facade, rather than
    deep inside the run.
    """
    from repro.serve.session import CONFIG_MISMATCH_ERROR

    if chip is not None and config is not None and chip.config != config:
        raise ValueError(CONFIG_MISMATCH_ERROR)
    if config is None:
        config = chip.config if chip is not None else ArchitectureConfig()
    simulator = ChipSimulator(
        config=config,
        library=library or DEFAULT_LIBRARY,
        timesteps=timesteps,
        encoder=encoder,
        backend=backend,
        rng=rng if rng is not None else np.random.default_rng(0),
    )
    return simulator.run(snn, inputs, labels=labels, chip=chip)
