"""Weight discretisation (bit-precision) utilities.

The bit-discretisation study (Fig. 14 of the paper) sweeps the memristor
precision from 1 to 8 bits and measures both the classification accuracy and
the energy impact.  This module implements the quantisers used by that study
and by the weight-to-crossbar mapping:

* :func:`quantize_uniform` — symmetric uniform quantisation of a signed
  weight tensor to ``2**bits`` levels per polarity, matching the behaviour of
  programming each weight magnitude onto a discrete-level memristor.
* :func:`quantize_network_weights` — convenience wrapper that quantises every
  weighted layer of an :class:`repro.snn.network.Network`.
* :func:`quantization_error` — RMS error metric used in tests and reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantizationSpec",
    "quantize_uniform",
    "quantization_error",
    "quantize_network_weights",
]


@dataclass(frozen=True)
class QuantizationSpec:
    """Describes a uniform quantisation of signed weights.

    Attributes
    ----------
    bits:
        Precision per weight magnitude; the number of representable magnitude
        levels is ``2**bits`` (including zero).
    per_column:
        When true, the quantisation scale is computed per output column
        (per neuron) rather than per tensor.  Per-column scaling mirrors how
        a crossbar column can be driven with an independent reference.
    """

    bits: int = 4
    per_column: bool = False

    def __post_init__(self) -> None:
        if self.bits < 1 or self.bits > 16:
            raise ValueError(f"bits must be in [1, 16], got {self.bits}")

    @property
    def levels(self) -> int:
        """Number of representable magnitude levels (including zero)."""
        return 2**self.bits


def _scales(weights: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Return the magnitude scale used for quantisation (per tensor or column)."""
    if spec.per_column and weights.ndim == 2:
        scale = np.max(np.abs(weights), axis=0, keepdims=True)
    else:
        scale = np.asarray(np.max(np.abs(weights)))
    return np.where(scale == 0, 1.0, scale)


def quantize_uniform(weights: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Quantise a signed weight tensor to the precision of ``spec``.

    The magnitude is quantised to ``levels - 1`` uniform steps between zero
    and the tensor (or column) maximum, and the sign is preserved — exactly
    what programming ``|w|`` on a positive/negative crossbar column pair does.

    Returns the de-quantised weights (same shape and dtype ``float64``).
    """
    w = np.asarray(weights, dtype=float)
    scale = _scales(w, spec)
    steps = spec.levels - 1
    normalised = np.clip(np.abs(w) / scale, 0.0, 1.0)
    quantised = np.rint(normalised * steps) / steps
    return np.sign(w) * quantised * scale


def quantization_error(weights: np.ndarray, spec: QuantizationSpec) -> float:
    """Root-mean-square quantisation error relative to the weight RMS.

    Returns 0 for an all-zero tensor.
    """
    w = np.asarray(weights, dtype=float)
    rms = float(np.sqrt(np.mean(w**2)))
    if rms == 0:
        return 0.0
    err = float(np.sqrt(np.mean((quantize_uniform(w, spec) - w) ** 2)))
    return err / rms


def quantize_network_weights(network, spec: QuantizationSpec):
    """Return a copy of ``network`` with every weighted layer quantised.

    ``network`` is an :class:`repro.snn.network.Network`; the import is done
    lazily to keep this module free of circular imports.
    """
    from repro.snn.network import Network  # local import to avoid a cycle

    if not isinstance(network, Network):
        raise TypeError(f"expected a Network, got {type(network).__name__}")
    clone = network.copy()
    for layer in clone.layers:
        weights = getattr(layer, "weights", None)
        if weights is not None:
            layer.weights = quantize_uniform(weights, spec)
    return clone
