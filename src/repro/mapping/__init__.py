"""The RESPARC mapping compiler.

Turns an SNN's structure into an explicit allocation of crossbar tiles, mPEs
and NeuroCells:

* :mod:`repro.mapping.partitioner` — connectivity-matrix partitioning onto
  fixed-size MCAs (with the CNN input-sharing optimisation).
* :mod:`repro.mapping.placer` — tile → mPE → NeuroCell placement.
* :mod:`repro.mapping.utilization` — utilisation aggregates.
* :mod:`repro.mapping.mapper` — the high-level :func:`map_network` /
  :func:`select_crossbar_size` API.
* :mod:`repro.mapping.report` — textual reports.
"""

from repro.mapping.mapper import MappedNetwork, map_network, select_crossbar_size
from repro.mapping.partitioner import (
    LayerPartition,
    TileGroup,
    partition_layer,
    partition_network_layers,
)
from repro.mapping.placer import LayerPlacement, Placement, place_partitions
from repro.mapping.report import compare_crossbar_sizes, mapping_report
from repro.mapping.utilization import (
    UtilisationSummary,
    summarise_utilisation,
    utilisation_by_layer,
)

__all__ = [
    "MappedNetwork",
    "map_network",
    "select_crossbar_size",
    "LayerPartition",
    "TileGroup",
    "partition_layer",
    "partition_network_layers",
    "LayerPlacement",
    "Placement",
    "place_partitions",
    "compare_crossbar_sizes",
    "mapping_report",
    "UtilisationSummary",
    "summarise_utilisation",
    "utilisation_by_layer",
]
