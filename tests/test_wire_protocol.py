"""Protocol version matrix: v1/v2 JSON peers, v3 frames, and the fallbacks.

The serving stack carries two wire carriers on the same TCP port —
newline-delimited JSON (protocols 1 and 2) and length-prefixed binary
frames (protocol 3) — with the carrier negotiated per connection and the
reply always leaving on the carrier its request arrived on.  This suite
pins the compatibility matrix:

* v1 (untagged, version-less) and v2 (tagged) JSON clients work unmodified
  against a v3 server;
* a v3 client negotiates frames against a v3 server, is forced back to
  JSON by ``wire="json"``, and falls back automatically against a canned
  pre-v3 server;
* every path returns responses bit-identical to a local ``ChipSession``;
* malformed and truncated frames surface as structured error replies
  (connection kept when the stream stays framed, hung up when it cannot
  be resynchronised);
* the graceful ``drain`` op is version-agnostic: an old v2 JSON peer can
  drive it, a draining server answers everything admitted and refuses new
  work with the structured ``draining`` error, and typed clients surface
  it as :class:`RemoteServerError` with ``.code == "draining"``;
* the satellite bug fixes: IPv6 endpoint parsing, jittered reconnect
  backoff, and ``infer_many`` cancelling outstanding work on failure.
"""

from __future__ import annotations

import contextlib
import json
import socket
import struct
import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import ChipSession, InferenceRequest, InferenceResponse
from repro.serve.distributed import (
    ChipServer,
    InferenceGateway,
    PipelinedSession,
    RemoteServerError,
    RemoteSession,
    parse_endpoint,
)
from repro.serve.distributed import client as client_module
from repro.serve.distributed.client import CancellableFuture, _retry_backoff
from repro.serve.schema import (
    ERROR_DRAINING,
    FRAME_HEADER_SIZE,
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame_payload,
    encode_frame,
    parse_frame_header,
    request_envelope,
)
from repro.snn import Dense, Network, convert_to_snn

ENERGY_RTOL = 1e-9


def _mlp(seed: int, dims: tuple[int, ...]):
    rng = np.random.default_rng(seed)
    layers = []
    for i, (n_in, n_out) in enumerate(zip(dims[:-1], dims[1:])):
        last = i == len(dims) - 2
        layers.append(
            Dense(
                n_in,
                n_out,
                activation=None if last else "relu",
                use_bias=False,
                rng=rng,
                name=f"fc{i}",
            )
        )
    network = Network((dims[0],), layers, name=f"wire-{'x'.join(map(str, dims))}")
    return convert_to_snn(network, rng.random((12, dims[0])))


@pytest.fixture(scope="module")
def workload():
    snn = _mlp(5, (48, 24, 10))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    rng = np.random.default_rng(44)
    inputs = rng.random((13, 48))
    labels = rng.integers(0, 10, size=13)
    return snn, config, inputs, labels


@pytest.fixture(scope="module")
def single_session(workload):
    snn, config, _, _ = workload
    return ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=17)


@pytest.fixture(scope="module")
def server(workload):
    snn, config, _, _ = workload
    session = ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=17)
    with ChipServer(session, port=0, workload="wire-matrix").start() as served:
        yield served


def _assert_identical(expected, actual):
    np.testing.assert_array_equal(expected.predictions, actual.predictions)
    np.testing.assert_array_equal(expected.spike_counts, actual.spike_counts)
    assert expected.accuracy == actual.accuracy
    e, a = expected.counters.as_dict(), actual.counters.as_dict()
    for name, value in e.items():
        if name == "crossbar_device_energy_j":
            assert a[name] == pytest.approx(value, rel=ENERGY_RTOL)
        else:
            assert a[name] == value, f"counter {name}: {a[name]} != {value}"
    assert actual.energy.total_j == pytest.approx(
        expected.energy.total_j, rel=ENERGY_RTOL
    )


def _read_reply_frame(stream) -> dict:
    header = stream.read(FRAME_HEADER_SIZE)
    assert len(header) == FRAME_HEADER_SIZE, "truncated reply frame header"
    meta_len, payload_len = parse_frame_header(header)
    meta = stream.read(meta_len)
    payload = stream.read(payload_len)
    return decode_frame_payload(meta, payload)


# -- endpoint parsing (IPv6 regression) ---------------------------------------------


class TestParseEndpoint:
    def test_ipv4(self):
        assert parse_endpoint("127.0.0.1:7070") == ("127.0.0.1", 7070)

    def test_ipv6_brackets_are_stripped(self):
        # socket.create_connection wants the bare address, not "[::1]".
        assert parse_endpoint("[::1]:7070") == ("::1", 7070)
        assert parse_endpoint("[2001:db8::2]:80") == ("2001:db8::2", 80)

    @pytest.mark.parametrize(
        "endpoint",
        ["[::1]", "[]:7070", "[::1:7070", "7070", ":7070", "host:", "host:nan"],
    )
    def test_rejects_malformed(self, endpoint):
        with pytest.raises(ValueError):
            parse_endpoint(endpoint)


# -- old JSON clients against a v3 server -------------------------------------------


class TestJsonPeersAgainstV3Server:
    def test_v1_untagged_versionless_lines(self, server, workload, single_session):
        _, _, inputs, labels = workload
        request = InferenceRequest(inputs=inputs, labels=labels)
        with socket.create_connection(server.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            # A version-less, id-less envelope is the protocol-1 shape.
            stream.write(
                json.dumps({"op": "infer", "request": request.to_dict()}).encode()
                + b"\n"
            )
            stream.flush()
            reply = json.loads(stream.readline())
        assert reply["ok"] is True
        assert "id" not in reply
        _assert_identical(
            single_session.infer(request),
            InferenceResponse.from_dict(reply["response"]),
        )

    def test_v2_tagged_json_lines(self, server, workload, single_session):
        _, _, inputs, labels = workload
        request = InferenceRequest(inputs=inputs[:6], labels=labels[:6])
        envelope = request_envelope(
            "infer", request_id="v2-req", version=2, request=request.to_dict()
        )
        with socket.create_connection(server.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            stream.write(json.dumps(envelope).encode() + b"\n")
            stream.flush()
            reply = json.loads(stream.readline())
        assert reply["ok"] is True
        assert reply["id"] == "v2-req"
        _assert_identical(
            single_session.infer(request),
            InferenceResponse.from_dict(reply["response"]),
        )


# -- graceful drain over the wire ---------------------------------------------------


class TestDrainOverTheWire:
    def test_v2_peer_drains_and_new_work_gets_structured_error(
        self, workload, single_session
    ):
        """Drain is version-agnostic; the admitted request still gets its answer."""
        snn, config, inputs, _ = workload

        class _Gate:
            def __init__(self, session):
                self._session = session
                self.entered = threading.Event()
                self.release = threading.Event()

            def __getattr__(self, name):
                return getattr(self._session, name)

            def infer(self, request):
                self.entered.set()
                assert self.release.wait(timeout=60), "gate never released"
                return self._session.infer(request)

        gate = _Gate(
            ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=17)
        )
        request = InferenceRequest(inputs=inputs[:5])
        with ChipServer(gate, port=0, workload="drain-wire").start() as served:
            with contextlib.ExitStack() as stack:
                # One admitted request occupies the work thread: the drain
                # below must wait for it, keeping the server in the
                # ``draining`` state while the refusals are probed.
                held = stack.enter_context(
                    socket.create_connection(served.address, timeout=30)
                )
                held_stream = held.makefile("rwb")
                held_stream.write(
                    json.dumps(
                        request_envelope(
                            "infer",
                            request_id="held",
                            version=2,
                            request=request.to_dict(),
                        )
                    ).encode()
                    + b"\n"
                )
                held_stream.flush()
                assert gate.entered.wait(timeout=30)
                # An old v2 JSON peer can drive the drain op directly.
                peer = stack.enter_context(
                    socket.create_connection(served.address, timeout=30)
                )
                peer_stream = peer.makefile("rwb")
                peer_stream.write(
                    json.dumps(
                        request_envelope("drain", request_id="d1", version=2)
                    ).encode()
                    + b"\n"
                )
                peer_stream.flush()
                ack = json.loads(peer_stream.readline())
                assert ack["ok"] is True
                assert ack["id"] == "d1"
                assert ack["draining"] is True
                assert ack["pending"] == 1
                # New v2 work on the same peer: a structured error envelope
                # with the machine-readable ``draining`` code, not a hangup.
                peer_stream.write(
                    json.dumps(
                        request_envelope(
                            "infer",
                            request_id="late",
                            version=2,
                            request=request.to_dict(),
                        )
                    ).encode()
                    + b"\n"
                )
                peer_stream.flush()
                refusal = json.loads(peer_stream.readline())
                assert refusal["ok"] is False
                assert refusal["id"] == "late"
                assert refusal["code"] == ERROR_DRAINING
                assert "draining" in refusal["error"]
                # A typed client surfaces the same refusal as a
                # RemoteServerError carrying the code.
                with RemoteSession.connect(served.address, timeout=30) as remote:
                    with pytest.raises(RemoteServerError) as excinfo:
                        remote.infer(request)
                    assert excinfo.value.code == ERROR_DRAINING
                # Release the held request: it gets its exact answer even
                # though the server has been draining the whole time.
                gate.release.set()
                reply = json.loads(held_stream.readline())
                assert reply["ok"] is True
                assert reply["id"] == "held"
                _assert_identical(
                    single_session.infer(request),
                    InferenceResponse.from_dict(reply["response"]),
                )


# -- v3 negotiation and parity ------------------------------------------------------


class TestV3Negotiation:
    def test_remote_session_negotiates_frames(self, server, workload, single_session):
        _, _, inputs, labels = workload
        request = InferenceRequest(inputs=inputs, labels=labels)
        with RemoteSession(*server.address) as remote:
            assert remote.wire_version == PROTOCOL_VERSION == 3
            assert remote.ping()
            _assert_identical(single_session.infer(request), remote.infer(request))

    def test_forced_json_matches_binary_bit_for_bit(self, server, workload):
        _, _, inputs, labels = workload
        request = InferenceRequest(inputs=inputs, labels=labels)
        with RemoteSession(*server.address) as binary:
            assert binary.wire_version == 3
            via_frames = binary.infer(request)
        with RemoteSession(*server.address, wire="json") as jsonic:
            assert jsonic.wire_version == 2
            via_json = jsonic.infer(request)
        np.testing.assert_array_equal(via_frames.predictions, via_json.predictions)
        np.testing.assert_array_equal(via_frames.spike_counts, via_json.spike_counts)
        assert via_frames.counters == via_json.counters
        assert via_frames.energy.to_dict() == via_json.energy.to_dict()
        assert via_frames.accuracy == via_json.accuracy

    def test_pipelined_session_negotiates_frames(
        self, server, workload, single_session
    ):
        _, _, inputs, labels = workload
        requests = [
            InferenceRequest(inputs=inputs, labels=labels),
            InferenceRequest(inputs=inputs[:4], sample_offset=2),
        ]
        with PipelinedSession(*server.address, connections=2) as remote:
            assert remote.wire_version == 3
            responses = remote.infer_many(requests)
        for request, response in zip(requests, responses):
            _assert_identical(single_session.infer(request), response)

    def test_pipelined_forced_json(self, server, workload, single_session):
        _, _, inputs, _ = workload
        request = InferenceRequest(inputs=inputs[:5])
        with PipelinedSession(*server.address, wire="json") as remote:
            assert remote.wire_version == 2
            _assert_identical(single_session.infer(request), remote.infer(request))

    def test_raw_v3_frame_round_trip(self, server, workload, single_session):
        _, _, inputs, labels = workload
        request = InferenceRequest(inputs=inputs, labels=labels)
        envelope = request_envelope(
            "infer", request_id="raw-v3", request=request.to_wire_dict()
        )
        with socket.create_connection(server.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            stream.write(encode_frame(envelope))
            stream.flush()
            reply = _read_reply_frame(stream)
        assert reply["ok"] is True
        assert reply["id"] == "raw-v3"
        assert isinstance(reply["response"]["predictions"], np.ndarray)
        _assert_identical(
            single_session.infer(request),
            InferenceResponse.from_dict(reply["response"]),
        )


# -- v3 client against a canned pre-v3 server ---------------------------------------


class _CannedV2Server:
    """A minimal pre-frame chip server: JSON lines only, protocol <= 2.

    Mirrors what an un-upgraded deployment answers — including rejecting
    any envelope that declares a version above 2 — so the client fallback
    path is tested against the real negotiation contract rather than
    against another instance of the new server.
    """

    def __init__(self, session: ChipSession):
        self.session = session
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.address = self._sock.getsockname()
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def _accept_loop(self) -> None:
        with contextlib.suppress(OSError):
            while True:
                conn, _ = self._sock.accept()
                threading.Thread(
                    target=self._serve, args=(conn,), daemon=True
                ).start()

    def _serve(self, conn: socket.socket) -> None:
        with contextlib.suppress(Exception), conn:
            stream = conn.makefile("rwb")
            for line in iter(stream.readline, b""):
                message = json.loads(line)
                request_id = message.get("id")
                version = message.get("v", 1)
                if not isinstance(version, int) or not 1 <= version <= 2:
                    reply = {
                        "ok": False,
                        "v": 2,
                        "error": f"unsupported protocol version {version!r}",
                    }
                elif message.get("op") == "ping":
                    reply = {"ok": True, "v": 2, "reply": "ping", "pong": True}
                elif message.get("op") == "info":
                    reply = {
                        "ok": True,
                        "v": 2,
                        "reply": "info",
                        "info": {
                            "capacity": 1,
                            "backend": self.session.backend,
                            "timesteps": self.session.timesteps,
                        },
                    }
                elif message.get("op") == "infer":
                    response = self.session.infer(
                        InferenceRequest.from_dict(message["request"])
                    )
                    reply = {
                        "ok": True,
                        "v": 2,
                        "reply": "infer",
                        "response": response.to_dict(),
                    }
                else:
                    reply = {"ok": False, "v": 2, "error": "unknown op"}
                if request_id is not None:
                    reply["id"] = request_id
                stream.write(json.dumps(reply).encode() + b"\n")
                stream.flush()

    def close(self) -> None:
        self._sock.close()


@pytest.fixture(scope="module")
def canned_v2_server(workload):
    snn, config, _, _ = workload
    session = ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=17)
    served = _CannedV2Server(session)
    yield served
    served.close()


class TestFallbackAgainstOldServer:
    def test_remote_session_falls_back_to_json(
        self, canned_v2_server, workload, single_session
    ):
        _, _, inputs, labels = workload
        request = InferenceRequest(inputs=inputs, labels=labels)
        with RemoteSession(*canned_v2_server.address) as remote:
            assert remote.wire_version == 2
            assert remote.ping()
            assert remote.capacity == 1
            _assert_identical(single_session.infer(request), remote.infer(request))

    def test_pipelined_session_falls_back_to_json(
        self, canned_v2_server, workload, single_session
    ):
        _, _, inputs, _ = workload
        request = InferenceRequest(inputs=inputs[:7])
        with PipelinedSession(*canned_v2_server.address, connections=1) as remote:
            assert remote.wire_version == 2
            _assert_identical(single_session.infer(request), remote.infer(request))


# -- malformed and truncated frames -------------------------------------------------


class TestFrameErrors:
    def test_bad_magic_gets_error_reply_then_hangup(self, server):
        header = struct.pack("<4sIQ", b"\x93XXX", 0, 0)
        with socket.create_connection(server.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            stream.write(header)
            stream.flush()
            reply = _read_reply_frame(stream)
            assert reply["ok"] is False
            assert "magic" in reply["error"]
            # The stream cannot be resynchronised: the server hangs up.
            assert stream.read(1) == b""

    def test_oversized_frame_gets_error_reply_then_hangup(self, server):
        header = struct.pack("<4sIQ", FRAME_MAGIC, 16, MAX_FRAME_BYTES)
        with socket.create_connection(server.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            stream.write(header)
            stream.flush()
            reply = _read_reply_frame(stream)
            assert reply["ok"] is False
            assert "exceeds" in reply["error"]
            assert stream.read(1) == b""

    def test_corrupt_metadata_keeps_connection_serving(self, server):
        meta = b"this is not json"
        frame = struct.pack("<4sIQ", FRAME_MAGIC, len(meta), 0) + meta
        with socket.create_connection(server.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            stream.write(frame)
            stream.flush()
            reply = _read_reply_frame(stream)
            assert reply["ok"] is False
            assert "metadata" in reply["error"]
            # The frame was well-delimited, so the stream stays in sync: a
            # valid request on the same connection still gets served.
            stream.write(encode_frame(request_envelope("ping", request_id="after")))
            stream.flush()
            reply = _read_reply_frame(stream)
            assert reply["ok"] is True
            assert reply["id"] == "after"
            assert reply["pong"] is True

    def test_bad_array_descriptor_echoes_request_id(self, server):
        # Valid framing, structurally broken metadata: the error reply is
        # structured AND tagged, so a pipelined client can route it.
        meta = json.dumps(
            {
                "envelope": {"v": 3, "op": "ping", "id": "bad-dtype"},
                "arrays": [{"dtype": "<f4", "shape": [1], "offset": 0}],
            },
            separators=(",", ":"),
        ).encode()
        frame = struct.pack("<4sIQ", FRAME_MAGIC, len(meta), 8) + meta + bytes(8)
        with socket.create_connection(server.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            stream.write(frame)
            stream.flush()
            reply = _read_reply_frame(stream)
            assert reply["ok"] is False
            assert reply["id"] == "bad-dtype"
            assert "dtype" in reply["error"]

    def test_truncated_frame_then_eof_drops_connection(self, server):
        header = struct.pack("<4sIQ", FRAME_MAGIC, 64, 128)
        with socket.create_connection(server.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            stream.write(header + b"only-part-of-the-meta")
            stream.flush()
            raw.shutdown(socket.SHUT_WR)
            # There is nobody to answer: the server just drops the peer.
            assert stream.read(1) == b""

    def test_server_still_healthy_after_frame_abuse(self, server, workload):
        _, _, inputs, _ = workload
        with RemoteSession(*server.address) as remote:
            assert remote.ping()
            assert remote.infer(InferenceRequest(inputs=inputs[:2])).batch_size == 2


# -- reconnect backoff --------------------------------------------------------------


class TestReconnectBackoff:
    def test_backoff_is_jittered_and_grows(self):
        first = {_retry_backoff(0) for _ in range(32)}
        assert all(0.025 <= delay <= 0.1 for delay in first)
        assert len(first) > 1, "backoff must be jittered, not constant"
        assert all(0.05 <= _retry_backoff(1) <= 0.2 for _ in range(32))

    def test_call_backs_off_between_reconnect_attempts(self, server, monkeypatch):
        delays: list[int] = []
        monkeypatch.setattr(
            client_module,
            "_retry_backoff",
            lambda attempt: (delays.append(attempt), 0.0)[1],
        )
        with ChipServer(
            server.target, port=0, workload="backoff"
        ).start() as doomed:
            remote = RemoteSession(*doomed.address, retries=2)
        # The server is gone: every attempt fails, with a backoff between
        # consecutive attempts (but not after the last).
        with pytest.raises(ConnectionError):
            remote.ping()
        remote.close()
        assert delays == [0, 1]


# -- infer_many cancels outstanding work on failure ---------------------------------


class TestInferManyCancellation:
    def _wired_futures(self, count: int, failing: int):
        futures = [CancellableFuture() for _ in range(count)]
        revoked: list[int] = []
        for index, future in enumerate(futures):
            future._canceller = lambda index=index: revoked.append(index)
        futures[failing].set_exception(RemoteServerError("boom", code="overloaded"))
        return futures, revoked

    def test_pipelined_infer_many_cancels_outstanding(self, monkeypatch):
        futures, revoked = self._wired_futures(3, failing=0)
        session = PipelinedSession.__new__(PipelinedSession)
        handed = iter(futures)
        monkeypatch.setattr(
            PipelinedSession,
            "submit",
            lambda self, request, deadline_s=None: next(handed),
        )
        with pytest.raises(RemoteServerError):
            session.infer_many([object(), object(), object()])
        assert futures[1].cancelled() and futures[2].cancelled()
        # Cancelling a CancellableFuture also revokes the remote work.
        assert sorted(revoked) == [1, 2]

    def test_pipelined_infer_many_success_path_untouched(self, monkeypatch):
        futures = [CancellableFuture(), CancellableFuture()]
        revoked: list[int] = []
        for index, future in enumerate(futures):
            future._canceller = lambda index=index: revoked.append(index)
        futures[0].set_result("a")
        futures[1].set_result("b")
        session = PipelinedSession.__new__(PipelinedSession)
        handed = iter(futures)
        monkeypatch.setattr(
            PipelinedSession,
            "submit",
            lambda self, request, deadline_s=None: next(handed),
        )
        assert session.infer_many([object(), object()]) == ["a", "b"]
        assert revoked == []

    def test_gateway_infer_many_cancels_outstanding(self, monkeypatch):
        futures = [Future() for _ in range(3)]
        futures[0].set_exception(RemoteServerError("boom"))
        gateway = InferenceGateway.__new__(InferenceGateway)
        handed = iter(futures)
        monkeypatch.setattr(
            InferenceGateway,
            "submit",
            lambda self, request, deadline_s=None: next(handed),
        )
        with pytest.raises(RemoteServerError):
            gateway.infer_many([object(), object(), object()])
        assert futures[1].cancelled() and futures[2].cancelled()
