"""The vectorized fast path of the structural chip model.

The structural model (:mod:`repro.core.resparc`) executes one sample at a
time through Python objects — maximal fidelity, minimal throughput.  This
package compiles a programmed chip into dense arrays
(:func:`~repro.fastpath.compiler.compile_chip`) and replays whole batches
through NumPy (:class:`~repro.fastpath.engine.VectorizedChipEngine`),
producing the same predictions, the same :class:`~repro.core.stats.EventCounters`
and the same energy totals as the structural execution.

Select it through ``ChipSimulator(backend="vectorized")`` or the
:func:`repro.core.simulator.simulate` facade; ``tests/test_backend_parity.py``
is the contract that keeps the two backends equivalent.
"""

from repro.fastpath.compiler import (
    CompiledChip,
    CompiledLayer,
    CompiledTile,
    StaticStepEvents,
    compile_chip,
)
from repro.fastpath.engine import BatchRunOutcome, VectorizedChipEngine

__all__ = [
    "CompiledChip",
    "CompiledLayer",
    "CompiledTile",
    "StaticStepEvents",
    "compile_chip",
    "BatchRunOutcome",
    "VectorizedChipEngine",
]
