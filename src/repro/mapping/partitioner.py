"""Connectivity-matrix partitioning onto fixed-size MCAs.

Section 3.1.1 of the paper: crossbars that operate reliably are much smaller
(e.g. 64x64) than a typical layer's fan-in, so a layer's connectivity matrix
must be partitioned across multiple MCAs and the partial sums integrated onto
the neuron by time multiplexing.  For sparse connectivity (CNNs), mapping
directly onto a large MCA wastes cross-points; enumerating the matrix across
smaller MCAs lets adjacent convolution windows share input rows, which is the
"input sharing" optimisation this partitioner models.

The partitioner works on the structural :class:`~repro.snn.topology.LayerConnectivity`
descriptors, not on weight values, and produces a :class:`LayerPartition`
summarising, for one layer and one crossbar size:

* how many crossbar tiles the layer needs,
* the rows/columns actually used per tile (utilisation),
* the time-multiplexing degree of its neurons (how many partial current sets
  each output neuron integrates),
* how many of those partial sums cross tile boundaries (and therefore need
  CCU analog transfers between mPEs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.snn.topology import LayerConnectivity

__all__ = ["TileGroup", "LayerPartition", "partition_layer", "partition_network_layers"]


@dataclass(frozen=True)
class TileGroup:
    """A group of identically shaped crossbar tiles within one layer.

    Conv layers produce thousands of tiles with identical geometry; grouping
    them keeps partitions compact.

    Attributes
    ----------
    count:
        Number of identical tiles in the group.
    rows_used, columns_used:
        Cross-points used in each tile (out of the physical crossbar
        geometry).
    synapses_per_tile:
        Mapped synapses per tile (<= rows_used * columns_used for sparse
        connectivity).
    outputs_per_tile:
        Logical output neurons whose (partial) sums this tile produces.
    windows_per_tile:
        Distinct input windows packed into the tile (1 for dense tiles).
    """

    count: int
    rows_used: int
    columns_used: int
    synapses_per_tile: int
    outputs_per_tile: int
    windows_per_tile: int = 1


@dataclass(frozen=True)
class LayerPartition:
    """Partition of one layer's connectivity matrix across fixed-size MCAs."""

    layer: LayerConnectivity
    crossbar_rows: int
    crossbar_columns: int
    tile_groups: tuple[TileGroup, ...]
    time_multiplex_degree: int

    # -- tile-level aggregates ---------------------------------------------------

    @property
    def tile_count(self) -> int:
        """Total MCAs used by the layer."""
        return sum(group.count for group in self.tile_groups)

    @property
    def mapped_synapses(self) -> int:
        """Synapses mapped across all tiles (equals the layer's synapse count)."""
        return sum(group.count * group.synapses_per_tile for group in self.tile_groups)

    @property
    def crosspoints(self) -> int:
        """Physical cross-points occupied by the layer's tiles."""
        return self.tile_count * self.crossbar_rows * self.crossbar_columns

    @property
    def utilisation(self) -> float:
        """Fraction of allocated cross-points that hold synapses."""
        return self.mapped_synapses / self.crosspoints if self.crosspoints else 0.0

    @property
    def mean_rows_used(self) -> float:
        """Average rows used per tile."""
        if self.tile_count == 0:
            return 0.0
        return sum(g.count * g.rows_used for g in self.tile_groups) / self.tile_count

    @property
    def mean_columns_used(self) -> float:
        """Average columns used per tile."""
        if self.tile_count == 0:
            return 0.0
        return sum(g.count * g.columns_used for g in self.tile_groups) / self.tile_count

    @property
    def row_utilisation(self) -> float:
        """Mean fraction of crossbar rows used."""
        return self.mean_rows_used / self.crossbar_rows if self.crossbar_rows else 0.0

    @property
    def column_utilisation(self) -> float:
        """Mean fraction of crossbar columns used."""
        return self.mean_columns_used / self.crossbar_columns if self.crossbar_columns else 0.0

    # -- per-timestep activity counts ---------------------------------------------

    @property
    def crossbar_evaluations_per_timestep(self) -> int:
        """MCA evaluations per simulation timestep (every tile fires once)."""
        return self.tile_count

    @property
    def neuron_integrations_per_timestep(self) -> int:
        """Partial-sum integrations per timestep (outputs x time-mux degree)."""
        return self.layer.n_outputs * self.time_multiplex_degree

    @property
    def external_current_transfers_per_timestep(self) -> int:
        """Analog partial sums that must hop between crossbars/mPEs per timestep.

        A neuron whose fan-in spans ``d`` tiles integrates ``d`` partial sums,
        ``d - 1`` of which may arrive from other MCAs through the CCU gated
        wires.
        """
        return self.layer.n_outputs * max(self.time_multiplex_degree - 1, 0)


def _partition_packed_windows(
    layer: LayerConnectivity, rows: int, columns: int
) -> tuple[tuple[TileGroup, ...], int]:
    """Partition a sparse layer whose windows fit inside one crossbar."""
    fan_in = layer.fan_in
    outputs_per_window = layer.outputs_per_window
    positions = layer.window_positions
    step = max(layer.shared_inputs_per_step, 1)

    windows_by_rows = 1 + (rows - fan_in) // step
    windows_by_columns = max(columns // outputs_per_window, 1)
    windows_per_tile = max(1, min(windows_by_rows, windows_by_columns, positions))

    full_tiles, remainder = divmod(positions, windows_per_tile)
    groups: list[TileGroup] = []
    if full_tiles:
        groups.append(
            TileGroup(
                count=full_tiles,
                rows_used=fan_in + (windows_per_tile - 1) * step,
                columns_used=windows_per_tile * outputs_per_window,
                synapses_per_tile=windows_per_tile * outputs_per_window * fan_in,
                outputs_per_tile=windows_per_tile * outputs_per_window,
                windows_per_tile=windows_per_tile,
            )
        )
    if remainder:
        groups.append(
            TileGroup(
                count=1,
                rows_used=fan_in + (remainder - 1) * step,
                columns_used=remainder * outputs_per_window,
                synapses_per_tile=remainder * outputs_per_window * fan_in,
                outputs_per_tile=remainder * outputs_per_window,
                windows_per_tile=remainder,
            )
        )
    return tuple(groups), 1


def _partition_split_windows(
    layer: LayerConnectivity, rows: int, columns: int
) -> tuple[tuple[TileGroup, ...], int]:
    """Partition a layer whose fan-in and/or outputs exceed one crossbar.

    Every window (a dense layer is one window covering all outputs) is split
    into a grid of ``row_splits x column_splits`` tiles; the row splits set
    the time-multiplexing degree.
    """
    fan_in = layer.fan_in
    outputs_per_window = layer.outputs_per_window
    positions = layer.window_positions

    row_splits = math.ceil(fan_in / rows)
    column_splits = math.ceil(outputs_per_window / columns)

    full_rows, row_remainder = divmod(fan_in, rows)
    full_columns, column_remainder = divmod(outputs_per_window, columns)

    row_blocks = [rows] * full_rows + ([row_remainder] if row_remainder else [])
    column_blocks = [columns] * full_columns + ([column_remainder] if column_remainder else [])

    # Group identical (row_block, column_block) combinations.
    combos: dict[tuple[int, int], int] = {}
    for r_block in row_blocks:
        for c_block in column_blocks:
            combos[(r_block, c_block)] = combos.get((r_block, c_block), 0) + 1

    groups = tuple(
        TileGroup(
            count=count * positions,
            rows_used=r_block,
            columns_used=c_block,
            synapses_per_tile=r_block * c_block,
            outputs_per_tile=c_block,
            windows_per_tile=1,
        )
        for (r_block, c_block), count in sorted(combos.items(), reverse=True)
    )
    return groups, row_splits


def partition_layer(layer: LayerConnectivity, rows: int, columns: int) -> LayerPartition:
    """Partition one layer across crossbars of geometry ``rows x columns``."""
    if rows <= 0 or columns <= 0:
        raise ValueError(f"crossbar geometry must be positive, got {rows}x{columns}")
    fits_rows = layer.fan_in <= rows
    fits_columns = layer.outputs_per_window <= columns
    if fits_rows and fits_columns and layer.window_positions > 1:
        groups, tmux = _partition_packed_windows(layer, rows, columns)
    else:
        groups, tmux = _partition_split_windows(layer, rows, columns)
    return LayerPartition(
        layer=layer,
        crossbar_rows=rows,
        crossbar_columns=columns,
        tile_groups=groups,
        time_multiplex_degree=tmux,
    )


def partition_network_layers(
    layers: list[LayerConnectivity], rows: int, columns: int
) -> list[LayerPartition]:
    """Partition every computational layer of a network."""
    return [partition_layer(layer, rows, columns) for layer in layers]
