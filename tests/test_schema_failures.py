"""Failure paths and property tests for the serving wire schema.

The schema is the trust boundary of the distributed subsystem: every byte a
chip server or process worker reads arrives through
``InferenceRequest.from_json`` / ``InferenceResponse.from_json``.  These
tests pin down the failure behaviour — malformed JSON, missing required
fields and unknown fields must all surface as :class:`ValueError` with a
message naming the problem — and property-test the lossless float round
trip of :class:`EventCounters` and :class:`EnergyReport` over randomized
values (JSON's shortest-round-trip float printing makes the cycle exact).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EventCounters
from repro.energy.model import EnergyReport
from repro.serve import InferenceRequest, InferenceResponse


def _request_dict() -> dict:
    return InferenceRequest(
        inputs=np.random.default_rng(0).random((3, 4)),
        labels=np.array([1, 2, 3]),
        timesteps=5,
        sample_offset=2,
    ).to_dict()


class TestMalformedPayloads:
    @pytest.mark.parametrize(
        "payload, match",
        [
            ("{not json", "malformed request JSON"),
            ("", "malformed request JSON"),
            ("[1, 2]", "must be a JSON object"),
            ('"a string"', "must be a JSON object"),
        ],
    )
    def test_request_from_json_rejects_junk(self, payload, match):
        with pytest.raises(ValueError, match=match):
            InferenceRequest.from_json(payload)

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("{truncated", "malformed response JSON"),
            ("null", "must be a JSON object"),
        ],
    )
    def test_response_from_json_rejects_junk(self, payload, match):
        with pytest.raises(ValueError, match=match):
            InferenceResponse.from_json(payload)

    def test_request_missing_inputs(self):
        data = _request_dict()
        del data["inputs"]
        with pytest.raises(ValueError, match=r"missing required fields: \['inputs'\]"):
            InferenceRequest.from_dict(data)

    def test_request_unknown_field(self):
        data = _request_dict()
        data["priority"] = "high"
        with pytest.raises(ValueError, match=r"unknown fields: \['priority'\]"):
            InferenceRequest.from_dict(data)

    def test_request_optional_fields_may_be_absent(self):
        restored = InferenceRequest.from_dict({"inputs": [[0.5, 0.25]]})
        assert restored.batch_size == 1
        assert restored.labels is None
        assert restored.timesteps is None
        assert restored.sample_offset == 0

    def test_response_missing_fields_are_named(self):
        with pytest.raises(ValueError, match="missing required fields") as excinfo:
            InferenceResponse.from_dict({"predictions": [1]})
        for name in ("counters", "energy", "backend"):
            assert name in str(excinfo.value)

    def test_response_unknown_field(self):
        data = {
            "predictions": [1],
            "spike_counts": [[0.0]],
            "counters": EventCounters().as_dict(),
            "energy": EnergyReport(label="t").to_dict(),
            "timesteps": 4,
            "backend": "vectorized",
            "batch_size": 1,
            "warp_factor": 9,
        }
        with pytest.raises(ValueError, match=r"unknown fields: \['warp_factor'\]"):
            InferenceResponse.from_dict(data)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="batch is empty"):
            InferenceRequest(inputs=np.zeros((0, 4)))
        with pytest.raises(ValueError, match="batch is empty"):
            InferenceRequest(inputs=[])

    def test_featureless_samples_rejected(self):
        with pytest.raises(ValueError, match="at least one feature"):
            InferenceRequest(inputs=np.zeros((3, 0)))

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels length 2"):
            InferenceRequest(inputs=np.zeros((3, 4)), labels=np.array([0, 1]))

    def test_request_json_round_trip(self):
        data = _request_dict()
        restored = InferenceRequest.from_json(json.dumps(data))
        assert restored.to_dict() == data


# -- property tests -----------------------------------------------------------------

finite_counts = st.floats(
    min_value=0.0, max_value=1e15, allow_nan=False, allow_infinity=False
)

counters_strategy = st.builds(
    EventCounters,
    **{name: finite_counts for name in EventCounters().as_dict()},
)

component_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
)
energy_values = st.floats(
    min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(counters=counters_strategy)
    def test_event_counters_survive_json_exactly(self, counters):
        payload = json.dumps(counters.as_dict())
        restored = EventCounters.from_dict(json.loads(payload))
        assert restored.as_dict() == counters.as_dict()

    @settings(max_examples=50, deadline=None)
    @given(
        components=st.dictionaries(component_names, energy_values, max_size=8),
        label=st.text(min_size=1, max_size=20),
    )
    def test_energy_report_survives_json_exactly(self, components, label):
        report = EnergyReport(label=label)
        for name, value in components.items():
            report.add(name, value)
        restored = EnergyReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert restored.components == report.components
        assert restored.label == report.label

    @settings(max_examples=25, deadline=None)
    @given(counters=counters_strategy)
    def test_merge_commutes_with_round_trip(self, counters):
        # Merging then serialising equals serialising then merging — the
        # property the pool/gateway merge relies on when responses cross a
        # process or socket boundary.
        other = EventCounters(crossbar_evaluations=7.0, neuron_spikes=3.5)
        direct = counters.merge(other).as_dict()
        via_wire = (
            EventCounters.from_dict(json.loads(json.dumps(counters.as_dict())))
            .merge(other)
            .as_dict()
        )
        assert direct == via_wire
