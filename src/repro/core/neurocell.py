"""The NeuroCell — RESPARC's reconfigurable datapath.

A NeuroCell (Fig. 3 of the paper) is a pool of mPEs (4x4 in the published
configuration) coupled by a grid of programmable switches (3x3) that provide
dense, one-hop spike-packet transfer inside the cell.  The switch network is
configured per mapping so each switch serves the mPEs that actually exchange
packets, and each switch applies zero-check gating to suppress all-zero
packets.

The structural simulator uses the NeuroCell to (a) place tiles on its mPEs
and (b) route packets from a source to destination mPEs while counting hops
and suppressions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.buffers import SpikePacket
from repro.core.mpe import MacroProcessingEngine
from repro.core.switch import ProgrammableSwitch, SwitchPort
from repro.crossbar.mca import CrossbarConfig

__all__ = ["NeuroCell"]


class NeuroCell:
    """A 2-D array of mPEs with a programmable switch network."""

    def __init__(
        self,
        cell_id: int,
        crossbar_config: CrossbarConfig,
        mpes_per_neurocell: int = 16,
        mcas_per_mpe: int = 4,
        packet_bits: int = 32,
        zero_check_enabled: bool = True,
        rng: np.random.Generator | None = None,
    ):
        if mpes_per_neurocell <= 0:
            raise ValueError(f"mpes_per_neurocell must be positive, got {mpes_per_neurocell}")
        self.cell_id = cell_id
        self.packet_bits = packet_bits
        # Ceil keeps every mPE index inside an n x n grid for non-square
        # counts (rounding made e.g. 2 mPEs share one grid cell, which
        # attached the same switch port twice); square counts are unchanged.
        self.side = max(int(math.ceil(math.sqrt(mpes_per_neurocell))), 1)
        self.mpes: list[MacroProcessingEngine] = [
            MacroProcessingEngine(
                mpe_id=f"nc{cell_id}.mpe{i}",
                crossbar_config=crossbar_config,
                mcas_per_mpe=mcas_per_mpe,
                packet_bits=packet_bits,
                rng=rng,
            )
            for i in range(mpes_per_neurocell)
        ]
        switch_side = max(self.side - 1, 1)
        self.switches: list[ProgrammableSwitch] = []
        for index in range(switch_side * switch_side):
            switch = ProgrammableSwitch(f"nc{cell_id}.sw{index}", zero_check_enabled)
            # Each switch connects to its four neighbouring mPEs plus the
            # row/column links to its peer switches.
            row, col = divmod(index, switch_side)
            for dr, dc in ((0, 0), (0, 1), (1, 0), (1, 1)):
                mpe_index = (row + dr) * self.side + (col + dc)
                if mpe_index < len(self.mpes):
                    name = self.mpes[mpe_index].mpe_id
                    switch.attach_port(SwitchPort(name=name, kind="mpe"))
                    switch.configure_route(name, name)
            switch.attach_port(SwitchPort(name="row_link", kind="switch"))
            switch.attach_port(SwitchPort(name="col_link", kind="switch"))
            switch.configure_route("", "row_link")  # default route towards peers
            self.switches.append(switch)

    # -- capacity / placement ----------------------------------------------------------

    @property
    def free_mca_count(self) -> int:
        """Unprogrammed MCAs remaining in the cell."""
        return sum(m.free_mca_count for m in self.mpes)

    def next_mpe_with_space(self) -> MacroProcessingEngine | None:
        """First mPE that still has a free MCA (placement order)."""
        for mpe in self.mpes:
            if mpe.free_mca_count > 0:
                return mpe
        return None

    def switch_for_mpe(self, mpe_id: str) -> ProgrammableSwitch:
        """The switch whose ports include the given mPE."""
        for switch in self.switches:
            if any(port.name == mpe_id for port in switch.ports):
                return switch
        # A 1x1 cell has a single switch serving everything.
        return self.switches[0]

    # -- datapath ----------------------------------------------------------------------------

    def route_spike_vector(
        self, spikes: np.ndarray, destination_mpe_ids: list[str], source: str = "io"
    ) -> dict[str, int]:
        """Route a spike vector to a set of destination mPEs through the switches.

        Returns per-destination delivered-packet counts.  All-zero packets are
        suppressed by the zero-check logic of the first switch they traverse.
        """
        delivered: dict[str, int] = {}
        for mpe_id in destination_mpe_ids:
            packets = SpikePacket.from_array(spikes, self.packet_bits, source=source, target=mpe_id)
            switch = self.switch_for_mpe(mpe_id)
            count = 0
            for packet, _port in switch.forward_many(packets):
                count += 1
            delivered[mpe_id] = count
        return delivered

    # -- statistics -------------------------------------------------------------------------------

    @property
    def switch_hops(self) -> int:
        """Packets forwarded by the cell's switches."""
        return sum(s.forwarded_packets for s in self.switches)

    @property
    def suppressed_packets(self) -> int:
        """Packets suppressed by zero-check logic."""
        return sum(s.suppressed_packets for s in self.switches)

    @property
    def zero_checks(self) -> int:
        """Zero-check comparisons performed."""
        return sum(s.zero_checks for s in self.switches)

    @property
    def buffer_accesses(self) -> int:
        """Buffer accesses across the cell's mPEs."""
        return sum(m.buffer_accesses for m in self.mpes)

    @property
    def crossbar_energy_j(self) -> float:
        """Analog crossbar energy accumulated in the cell."""
        return sum(m.crossbar_energy_j for m in self.mpes)
