"""Elastic fleet: replica lifecycle, autoscaling loop, dynamic membership.

This package turns the static serving stack into an *elastic* one.  Three
cooperating parts, each usable on its own:

* :mod:`repro.serve.fleet.replica` — :class:`ReplicaManager` provisions
  real :class:`~repro.serve.distributed.ChipServer` OS processes from a
  picklable :class:`~repro.serve.distributed.SessionSpec` (the executor
  registry's provisioning path), health-checks them via ping, and retires
  them through the graceful ``drain`` wire op: the server stops admitting
  work, finishes its queue, answers everything it owes, then exits — no
  in-flight request is ever failed by a scale-down.
* :mod:`repro.serve.fleet.controller` — :class:`FleetController` samples
  per-replica load on an interval, maintains EWMA backlog + shed-rate
  signals, and applies a hysteresis policy (:class:`FleetPolicy`): scale up
  on sustained pressure above target, scale down after a sustained idle
  window, min/max bounds, cooldown between actions.  Deterministic under an
  injected clock; every decision is a structured event.
* :mod:`repro.serve.fleet.fleet` — :class:`ElasticFleet` wires both to a
  :class:`~repro.serve.distributed.InferenceGateway` whose membership
  changes live (``add_endpoint`` / ``drain_endpoint`` /
  ``remove_endpoint``), so the fleet grows and shrinks mid-stream while
  merged results stay bit-identical to a single ``ChipSession``.

``python -m repro.serve.distributed fleet`` boots one from the command
line (spec, min/max replicas, policy knobs, status dump).
"""

from repro.serve.fleet.controller import FleetController, FleetPolicy
from repro.serve.fleet.fleet import ElasticFleet
from repro.serve.fleet.replica import Replica, ReplicaManager, ReplicaSpec

__all__ = [
    "ElasticFleet",
    "FleetController",
    "FleetPolicy",
    "Replica",
    "ReplicaManager",
    "ReplicaSpec",
]
