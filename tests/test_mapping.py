"""Tests for the mapping compiler: partitioning, placement, utilisation, API."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping import (
    compare_crossbar_sizes,
    map_network,
    mapping_report,
    partition_layer,
    place_partitions,
    select_crossbar_size,
    summarise_utilisation,
    utilisation_by_layer,
)
from repro.snn import AvgPool2D, Conv2D, Network, extract_connectivity
from repro.snn.topology import LayerConnectivity
from repro.workloads import build_mnist_cnn, build_mnist_mlp


def _dense_conn(n_in: int, n_out: int) -> LayerConnectivity:
    return LayerConnectivity(
        index=0, name="d", kind="dense", n_inputs=n_in, n_outputs=n_out,
        fan_in=n_in, synapses=n_in * n_out, output_groups=n_out,
        window_positions=1, shared_inputs_per_step=0, unique_weights=n_in * n_out,
    )


class TestPartitioner:
    def test_dense_layer_fits_one_tile(self):
        partition = partition_layer(_dense_conn(32, 32), 64, 64)
        assert partition.tile_count == 1
        assert partition.time_multiplex_degree == 1
        assert partition.mapped_synapses == 32 * 32
        assert partition.utilisation == pytest.approx(1024 / 4096)

    def test_dense_layer_splits_rows_and_columns(self):
        partition = partition_layer(_dense_conn(150, 100), 64, 64)
        assert partition.tile_count == 3 * 2
        assert partition.time_multiplex_degree == 3
        assert partition.mapped_synapses == 150 * 100

    def test_dense_utilisation_near_one_for_exact_fit(self):
        partition = partition_layer(_dense_conn(128, 128), 64, 64)
        assert partition.utilisation == pytest.approx(1.0)
        assert partition.tile_count == 4

    def test_external_transfers_follow_time_multiplexing(self):
        partition = partition_layer(_dense_conn(200, 10), 64, 64)
        assert partition.time_multiplex_degree == 4
        assert partition.external_current_transfers_per_timestep == 10 * 3

    def test_conv_windows_pack_with_input_sharing(self, rng):
        network = Network(
            (10, 10, 1),
            [Conv2D(1, 4, kernel_size=3, padding="valid", rng=rng)],
            name="conv-pack",
        )
        conn = extract_connectivity(network)[0]
        partition = partition_layer(conn, 32, 32)
        # fan-in 9, step 3: windows per tile limited by columns (32 // 4 = 8).
        first_group = partition.tile_groups[0]
        assert first_group.windows_per_tile == 8
        assert first_group.rows_used == 9 + 7 * 3
        assert first_group.columns_used == 32
        assert partition.mapped_synapses == conn.synapses

    def test_pool_layer_packing(self, rng):
        network = Network((8, 8, 4), [AvgPool2D(2)], name="pool")
        conn = extract_connectivity(network)[0]
        partition = partition_layer(conn, 64, 64)
        # 64 outputs with fan-in 4: 16 windows per tile (row limited).
        assert partition.tile_groups[0].windows_per_tile == 16
        assert partition.tile_count == 4
        assert partition.mapped_synapses == conn.synapses

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            partition_layer(_dense_conn(8, 8), 0, 64)

    def test_crossbar_evaluations_equal_tiles(self):
        partition = partition_layer(_dense_conn(100, 100), 32, 32)
        assert partition.crossbar_evaluations_per_timestep == partition.tile_count
        assert partition.neuron_integrations_per_timestep == 100 * partition.time_multiplex_degree

    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=400),
        st.sampled_from([32, 64, 128]),
    )
    @settings(max_examples=40, deadline=None)
    def test_dense_partition_conserves_synapses(self, n_in, n_out, size):
        partition = partition_layer(_dense_conn(n_in, n_out), size, size)
        assert partition.mapped_synapses == n_in * n_out
        assert partition.tile_count >= 1
        assert 0 < partition.utilisation <= 1.0
        assert partition.mean_rows_used <= size
        assert partition.mean_columns_used <= size

    @given(st.sampled_from([32, 64, 128]))
    @settings(max_examples=3, deadline=None)
    def test_cnn_partition_conserves_synapses(self, size):
        network = build_mnist_cnn(scale=0.2)
        for conn in extract_connectivity(network):
            partition = partition_layer(conn, size, size)
            assert partition.mapped_synapses == conn.synapses


class TestPlacement:
    def test_mlp_placement_counts(self):
        network = build_mnist_mlp()
        mapped = map_network(network, crossbar_size=64)
        placement = mapped.placement
        assert placement.total_mpes == sum(l.mpe_count for l in placement.layers)
        assert placement.total_neurocells >= 1
        assert placement.total_switches == placement.total_neurocells * 9

    def test_layers_do_not_share_mpes(self):
        network = build_mnist_mlp()
        mapped = map_network(network, crossbar_size=64)
        for layer, partition in zip(mapped.placement.layers, mapped.partitions):
            assert layer.mpe_count >= int(np.ceil(partition.tile_count / 4))

    def test_conv_consumer_stays_in_neurocell(self):
        network = build_mnist_cnn(scale=0.5)
        mapped = map_network(network, crossbar_size=64)
        layers = mapped.placement.layers
        kinds = [p.layer.kind for p in mapped.partitions]
        for position, layer in enumerate(layers[:-1]):
            if kinds[position + 1] in ("conv", "pool"):
                assert layer.output_stays_in_neurocell

    def test_invalid_hierarchy_rejected(self):
        network = build_mnist_mlp(scale=0.1)
        conns = extract_connectivity(network)
        from repro.mapping import partition_network_layers

        partitions = partition_network_layers(conns, 64, 64)
        with pytest.raises(ValueError):
            place_partitions(partitions, mcas_per_mpe=0)

    def test_placement_lookup(self):
        mapped = map_network(build_mnist_mlp(scale=0.2), crossbar_size=64)
        first = mapped.placement.layers[0]
        assert mapped.placement.layer(first.layer_index) is first
        with pytest.raises(KeyError):
            mapped.placement.layer(999)


class TestMapperApi:
    def test_mapped_network_aggregates(self):
        network = build_mnist_mlp()
        mapped = map_network(network, crossbar_size=64)
        assert mapped.total_synapses == network.synapse_count
        assert mapped.total_neurons == network.neuron_count
        assert mapped.total_tiles == sum(p.tile_count for p in mapped.partitions)
        assert 0 < mapped.utilisation.mean_utilisation <= 1.0

    def test_larger_crossbars_need_fewer_tiles_for_mlp(self):
        network = build_mnist_mlp()
        tiles = [map_network(network, crossbar_size=s).total_tiles for s in (32, 64, 128)]
        assert tiles[0] > tiles[1] > tiles[2]

    def test_cnn_utilisation_below_mlp(self):
        mlp = map_network(build_mnist_mlp(), crossbar_size=64)
        cnn = map_network(build_mnist_cnn(), crossbar_size=64)
        assert cnn.utilisation.mean_utilisation < mlp.utilisation.mean_utilisation

    def test_cnn_utilisation_drops_with_size(self):
        cnn = build_mnist_cnn()
        utils = [
            map_network(cnn, crossbar_size=s).utilisation.mean_utilisation for s in (32, 64, 128)
        ]
        assert utils[0] > utils[1] > utils[2]

    def test_partition_for_lookup(self):
        mapped = map_network(build_mnist_mlp(scale=0.2), crossbar_size=64)
        index = mapped.partitions[0].layer.index
        assert mapped.partition_for(index).layer.index == index
        with pytest.raises(KeyError):
            mapped.partition_for(1234)

    def test_accepts_spiking_network(self, small_mlp, rng):
        from repro.snn import convert_to_snn

        snn = convert_to_snn(small_mlp, rng.random((4, 36)))
        mapped = map_network(snn, crossbar_size=32)
        assert mapped.network_name == small_mlp.name

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            map_network("not-a-network")

    def test_select_crossbar_size_respects_reliability_limit(self):
        network = build_mnist_mlp(scale=0.25)
        best, costs = select_crossbar_size(network, candidate_sizes=(32, 64, 128), max_reliable_size=64)
        assert 128 not in costs
        assert best in (32, 64)

    def test_select_crossbar_size_prefers_large_for_mlp(self):
        best, costs = select_crossbar_size(build_mnist_mlp(), candidate_sizes=(32, 64, 128))
        assert best in (64, 128)
        assert costs[32] > costs[best]

    def test_select_crossbar_size_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            select_crossbar_size(build_mnist_mlp(scale=0.1), candidate_sizes=())

    def test_reports_render(self):
        mapped = map_network(build_mnist_mlp(scale=0.2), crossbar_size=64)
        text = mapping_report(mapped)
        assert "mnist-mlp" in text and "tiles" in text
        table = compare_crossbar_sizes(build_mnist_mlp(scale=0.2), sizes=(32, 64))
        assert "32" in table and "64" in table

    def test_utilisation_helpers(self):
        mapped = map_network(build_mnist_mlp(scale=0.3), crossbar_size=64)
        summary = summarise_utilisation(mapped.partitions)
        assert summary.total_synapses == mapped.total_synapses
        assert summary.wasted_crosspoints == summary.total_crosspoints - summary.total_synapses
        per_layer = utilisation_by_layer(mapped.partitions)
        assert len(per_layer) == len(mapped.partitions)
        with pytest.raises(ValueError):
            summarise_utilisation([])
