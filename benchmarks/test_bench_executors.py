"""Wall-clock comparison of the thread and process shard executors.

The process executor exists for workloads the thread pool cannot scale —
the structural backend's per-sample Python loop holds the GIL, and remote
workers are processes by definition — but it pays real overhead per batch:
requests and responses cross the process boundary as JSON, and each worker
owns (and compiled) its own chip.  This benchmark records both executors at
``jobs=4`` on a batch of 256 so the BENCH trends catch regressions, and
asserts the process executor stays within sane bounds of the thread
executor on multi-core machines (it must not collapse to pathological
serialisation costs) while remaining result-identical.

Numbers observed on a 4-core dev box (vectorized backend, batch 256,
timesteps 8): thread ~0.09 s, process ~0.16 s — the JSON hop costs roughly
2x, which multi-host sharding then wins back by adding machines.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import ChipPool, InferenceRequest
from repro.snn import Dense, Network, convert_to_snn

BATCH = 256
TIMESTEPS = 8
JOBS = 4

#: The process executor must stay within this factor of the thread executor
#: on a multi-core machine.  Generous on purpose: it guards against
#: pathological regressions (per-request chip rebuilds, quadratic JSON
#: costs), not against the inherent IPC overhead.
PROCESS_SANITY_FACTOR = 25.0


@pytest.fixture(scope="module")
def executor_workload():
    """A wider MLP and a large batch, sized so per-shard work dominates."""
    rng = np.random.default_rng(29)
    network = Network(
        (256,),
        [
            Dense(256, 128, use_bias=False, rng=rng, name="fc1"),
            Dense(128, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="executor-mlp",
    )
    snn = convert_to_snn(network, rng.random((24, 256)))
    config = ArchitectureConfig(crossbar_rows=32, crossbar_columns=32)
    inputs = rng.random((BATCH, 256))
    return snn, config, inputs


def _best_time(pool: ChipPool, request: InferenceRequest, rounds: int = 3):
    best = float("inf")
    response = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        response = pool.infer(request)
        best = min(best, time.perf_counter() - t0)
    return best, response


def test_bench_thread_executor(benchmark, executor_workload):
    """Timing reference: jobs=4 thread-pool sharding on the vectorized backend."""
    snn, config, inputs = executor_workload
    request = InferenceRequest(inputs=inputs)
    with ChipPool(
        snn, jobs=JOBS, config=config, timesteps=TIMESTEPS, seed=0, executor="thread"
    ) as pool:
        response = benchmark.pedantic(lambda: pool.infer(request), iterations=1, rounds=3)
    assert response.predictions.shape == (BATCH,)
    assert response.jobs == JOBS


def test_bench_process_executor(benchmark, executor_workload):
    """Timing reference: jobs=4 process workers, shards shipped as JSON."""
    snn, config, inputs = executor_workload
    request = InferenceRequest(inputs=inputs)
    with ChipPool(
        snn, jobs=JOBS, config=config, timesteps=TIMESTEPS, seed=0, executor="process"
    ) as pool:
        response = benchmark.pedantic(lambda: pool.infer(request), iterations=1, rounds=3)
    assert response.predictions.shape == (BATCH,)
    assert response.jobs == JOBS


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="executor throughput comparison needs >= 2 cores",
)
def test_process_executor_within_sane_bounds(executor_workload, persist_result):
    """jobs=4 process sharding must stay within bounds of thread sharding."""
    snn, config, inputs = executor_workload
    request = InferenceRequest(inputs=inputs)
    with ChipPool(
        snn, jobs=JOBS, config=config, timesteps=TIMESTEPS, seed=0, executor="thread"
    ) as pool:
        thread_s, thread_response = _best_time(pool, request)
    with ChipPool(
        snn, jobs=JOBS, config=config, timesteps=TIMESTEPS, seed=0, executor="process"
    ) as pool:
        process_s, process_response = _best_time(pool, request)

    ratio = process_s / thread_s
    print(
        f"\nexecutor wall-clock (batch {BATCH}, jobs={JOBS}): "
        f"thread {thread_s:.3f}s, process {process_s:.3f}s, "
        f"process/thread {ratio:.2f}x"
    )
    persist_result(
        "executors",
        "thread_vs_process",
        {
            "batch": BATCH,
            "jobs": JOBS,
            "timesteps": TIMESTEPS,
            "thread_s": thread_s,
            "process_s": process_s,
            "process_over_thread": ratio,
        },
    )
    assert process_s < PROCESS_SANITY_FACTOR * thread_s, (
        f"process executor {ratio:.1f}x slower than thread executor "
        f"({process_s:.3f}s vs {thread_s:.3f}s) — beyond the sane-overhead bound"
    )
    # The executor must not change the answer.
    np.testing.assert_array_equal(
        thread_response.predictions, process_response.predictions
    )
    np.testing.assert_array_equal(
        thread_response.spike_counts, process_response.spike_counts
    )
    assert process_response.energy.total_j == pytest.approx(
        thread_response.energy.total_j, rel=1e-9
    )
