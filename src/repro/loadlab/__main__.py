"""CLI for the load lab: ``python -m repro.loadlab sweep``.

Examples
--------
A quick 2×2 micro-sweep (the CI smoke configuration)::

    python -m repro.loadlab sweep --topologies session server \\
        --closed 1 2 --requests 8 --warmup 1 --batch 4

A fuller matrix with open-loop profiles and the fleet::

    python -m repro.loadlab sweep --topologies session pool server gateway \\
        --closed 1 4 --open 5 20 --requests 32 --output /tmp/loadlab.json

Every sweep appends one run record to the versioned trajectory document
(default ``benchmarks/results/loadlab.json``; override with ``--output``
or ``BENCH_RESULTS_DIR``) and prints a per-cell summary table plus the
rank-based topology contrasts.

``python -m repro.loadlab compare`` then diffs the two newest runs in
that trajectory on matching topology × load cells (throughput, p95 queue
wait, energy per request, and a Mann-Whitney test over the stored latency
samples) — a soft regression gate that prints warnings but always exits
0, for wiring after the sweep in CI.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.loadlab import compare as compare_module
from repro.loadlab.generator import LoadSpec
from repro.loadlab.sweep import persist_sweep, run_sweep
from repro.loadlab.topologies import TOPOLOGIES, default_workload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadlab",
        description="Statistical load lab for the serving stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sweep = sub.add_parser("sweep", help="run a topology × load matrix")
    sweep.add_argument(
        "--topologies",
        nargs="+",
        default=["session", "server"],
        choices=sorted(TOPOLOGIES),
        help="serving topologies to compare",
    )
    sweep.add_argument(
        "--closed",
        nargs="*",
        type=int,
        default=[1, 2],
        metavar="WORKERS",
        help="closed-loop profiles, one per worker count",
    )
    sweep.add_argument(
        "--open",
        nargs="*",
        type=float,
        default=[],
        metavar="RPS",
        help="open-loop profiles, one per target request rate",
    )
    sweep.add_argument("--requests", type=int, default=16, help="measured requests per cell")
    sweep.add_argument("--warmup", type=int, default=2, help="unmeasured warmup requests")
    sweep.add_argument("--batch", type=int, default=4, help="samples per request")
    sweep.add_argument("--seed", type=int, default=0, help="load generator seed")
    sweep.add_argument(
        "--timesteps", type=int, default=4, help="simulation timesteps per request"
    )
    sweep.add_argument(
        "--output",
        default=None,
        help="trajectory JSON path (default benchmarks/results/loadlab.json)",
    )
    sweep.add_argument(
        "--json", action="store_true", help="print the full result record as JSON"
    )

    compare = sub.add_parser(
        "compare",
        help="diff the two newest sweep runs; warn on regressions, exit 0",
    )
    compare.add_argument(
        "--input",
        default=None,
        help="trajectory JSON path (default benchmarks/results/loadlab.json)",
    )
    compare.add_argument(
        "--baseline-runs",
        type=int,
        default=1,
        metavar="N",
        help="compare against the median of the previous N runs (1 = just "
        "the previous run); robust to one noisy historical run",
    )
    compare.add_argument(
        "--throughput-drop",
        type=float,
        default=compare_module.THROUGHPUT_DROP,
        metavar="FRACTION",
        help="served-throughput drop that triggers a warning",
    )
    compare.add_argument(
        "--p95-rise",
        type=float,
        default=compare_module.P95_RISE,
        metavar="FRACTION",
        help="p95 queue-wait rise that triggers a warning",
    )
    compare.add_argument(
        "--p95-floor",
        type=float,
        default=compare_module.P95_FLOOR_S,
        metavar="SECONDS",
        help="absolute p95 rise below which a rise is jitter, not regression",
    )
    compare.add_argument(
        "--energy-rise",
        type=float,
        default=compare_module.ENERGY_RISE,
        metavar="FRACTION",
        help="energy-per-request rise that triggers a warning",
    )
    compare.add_argument(
        "--alpha",
        type=float,
        default=compare_module.ALPHA,
        metavar="P",
        help="significance level for the latency-distribution test",
    )
    compare.add_argument(
        "--json", action="store_true", help="print the full comparison as JSON"
    )
    return parser


def _loads(args: argparse.Namespace) -> list[LoadSpec]:
    loads = [
        LoadSpec(
            mode="closed",
            concurrency=workers,
            requests=args.requests,
            warmup=args.warmup,
            batch_size=args.batch,
            seed=args.seed,
        )
        for workers in args.closed
    ]
    loads.extend(
        LoadSpec(
            mode="open",
            rate=rate,
            requests=args.requests,
            warmup=args.warmup,
            batch_size=args.batch,
            seed=args.seed,
        )
        for rate in args.open
    )
    if not loads:
        raise SystemExit("no load profiles: pass --closed and/or --open values")
    return loads


def _print_cells(cells: list[dict]) -> None:
    header = (
        f"{'topology':<10} {'load':<14} {'served':>6} {'shed%':>6} "
        f"{'rps':>8} {'p50 ms':>8} {'p95 ms':>8} {'qwait p95 ms':>12} {'uJ/req':>8}"
    )
    print(header)
    print("-" * len(header))
    for cell in cells:
        latency = cell["latency_s"] or {}
        qwait = cell["queue_wait_s"] or {}
        energy = cell["energy_j_per_request"]
        print(
            f"{cell['topology']:<10} {cell['load']:<14} {cell['served']:>6} "
            f"{100 * cell['shed_rate']:>5.1f}% {cell['throughput_rps']:>8.2f} "
            f"{1e3 * latency.get('p50', float('nan')):>8.2f} "
            f"{1e3 * latency.get('p95', float('nan')):>8.2f} "
            f"{1e3 * qwait.get('p95', float('nan')):>12.2f} "
            f"{1e6 * energy if energy is not None else float('nan'):>8.3f}"
        )


def _print_contrasts(result: dict) -> None:
    for block in result["contrasts"]:
        omnibus = block["kruskal_wallis"]
        print(
            f"\n{block['load']}: Kruskal-Wallis H={omnibus['h']:.3f} "
            f"p={omnibus['p']:.4f} (df={omnibus['df']:.0f})"
        )
        for pair in block["pairwise"]:
            print(
                f"  {pair['a']} vs {pair['b']}: U={pair['u']:.1f} "
                f"effect={pair['effect']:.3f} p={pair['p']:.4f} "
                f"holm={pair['p_holm']:.4f}"
            )
    corr = result["throughput_energy_spearman"]
    if corr is not None:
        print(
            f"\nthroughput vs energy/request: Spearman rho={corr['rho']:.3f} "
            f"p={corr['p']:.4f} over {corr['cells']} cells"
        )


def _cmd_compare(args: argparse.Namespace) -> int:
    report = compare_module.compare_latest_runs(
        args.input,
        baseline_runs=args.baseline_runs,
        throughput_drop=args.throughput_drop,
        p95_rise=args.p95_rise,
        p95_floor_s=args.p95_floor,
        energy_rise=args.energy_rise,
        alpha=args.alpha,
    )
    if report is None:
        return 0
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(compare_module.render_comparison(report))
    # Soft gate by design: warnings inform, the trajectory is the record.
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    loads = _loads(args)
    workload = default_workload(timesteps=args.timesteps)
    result = run_sweep(
        args.topologies,
        loads,
        workload=workload,
        progress=lambda message: print(f"[loadlab] {message}", flush=True),
    )
    path = persist_sweep(result, args.output)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        _print_cells(result["cells"])
        _print_contrasts(result)
    print(f"\n[loadlab] appended run to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
