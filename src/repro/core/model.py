"""Analytical RESPARC energy/performance model.

This is the model behind every quantitative result in the paper's evaluation:
given a network mapped onto the reconfigurable hierarchy
(:class:`~repro.mapping.mapper.MappedNetwork`), the spike-activity statistics
of the workload (:class:`~repro.snn.functional.ActivityTrace`) and the
architecture configuration, it charges per-event energies for every
architectural event of one classification and accumulates the latency of the
logical dataflow (Fig. 7): bus broadcast → switch-network distribution →
crossbar evaluation → time-multiplexed neuron integration → spike-packet
collection.

Event-driven operation (Section 3.2) is modelled through the measured
zero-packet statistics: when ``ArchitectureConfig.event_driven`` is true,
switch transfers, bus broadcasts and whole-crossbar evaluations whose spike
packets are entirely zero are suppressed (their zero-check energy is still
charged); when false, every packet moves and every crossbar fires every
timestep.

The same event counters used here are produced by the structural simulator
(:mod:`repro.core.simulator`), which is how the two are cross-validated in
the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import ArchitectureConfig
from repro.core.stats import EventCounters, counters_to_energy
from repro.crossbar.energy import CrossbarEnergyModel
from repro.energy.cacti import SRAMConfig, SRAMModel
from repro.energy.components import DEFAULT_LIBRARY, ComponentLibrary
from repro.energy.latency import LatencyReport
from repro.energy.model import EnergyReport
from repro.mapping.mapper import MappedNetwork, map_network
from repro.snn.conversion import SpikingNetwork
from repro.snn.functional import ActivityTrace
from repro.snn.network import Network

__all__ = ["ResparcEvaluation", "ResparcModel"]


@dataclass(frozen=True)
class ResparcEvaluation:
    """Energy, latency and raw event counts of one classification on RESPARC."""

    energy: EnergyReport
    latency: LatencyReport
    counters: EventCounters
    mapped: MappedNetwork

    @property
    def energy_per_classification_j(self) -> float:
        """Total energy of one classification (J)."""
        return self.energy.total_j

    @property
    def latency_per_classification_s(self) -> float:
        """Total latency of one classification (s)."""
        return self.latency.total_s


@dataclass
class ResparcModel:
    """Analytical activity-based model of the RESPARC architecture."""

    config: ArchitectureConfig = field(default_factory=ArchitectureConfig)
    library: ComponentLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)

    def __post_init__(self) -> None:
        self.crossbar_energy = CrossbarEnergyModel(device=self.config.device)
        self.input_sram = SRAMModel(
            SRAMConfig(capacity_bytes=self.config.input_sram_bytes, word_bits=self.config.word_bits)
        )

    # -- mapping helper -----------------------------------------------------------

    def map(self, network: Network | SpikingNetwork) -> MappedNetwork:
        """Map a network using this model's architecture parameters."""
        return map_network(
            network,
            crossbar_size=self.config.crossbar_rows,
            crossbar_columns=self.config.crossbar_columns,
            mcas_per_mpe=self.config.mcas_per_mpe,
            mpes_per_neurocell=self.config.mpes_per_neurocell,
        )

    # -- evaluation -----------------------------------------------------------------

    def evaluate(
        self,
        mapped: MappedNetwork | Network | SpikingNetwork,
        trace: ActivityTrace,
        label: str | None = None,
    ) -> ResparcEvaluation:
        """Estimate one classification's energy and latency on RESPARC.

        Parameters
        ----------
        mapped:
            A mapped network (or a network, which is then mapped with this
            model's configuration).
        trace:
            Spike-activity statistics measured by the functional simulator.
        label:
            Report label; defaults to ``resparc-<size>/<network>``.
        """
        if not isinstance(mapped, MappedNetwork):
            mapped = self.map(mapped)
        cfg = self.config
        lib = self.library
        label = label or f"resparc-{cfg.crossbar_rows}/{trace.network_name}"

        counters = EventCounters()
        latency = LatencyReport(label=label)
        timesteps = trace.timesteps
        packet_bits = cfg.packet_bits
        word_bits = cfg.word_bits
        switches_per_nc = cfg.switches_per_neurocell

        communication_s = 0.0
        compute_s = 0.0

        for position, partition in enumerate(mapped.partitions):
            layer = partition.layer
            placement = mapped.placement.layer(layer.index)
            activity = trace.layer(layer.index)
            rate = activity.input_spike_rate
            out_rate = activity.output_spike_rate
            zero_packet = activity.zero_packet_fraction_for(packet_bits)
            zero_word = activity.zero_packet_fraction_for(word_bits)
            packet_keep = (1.0 - zero_packet) if cfg.event_driven else 1.0
            word_keep = (1.0 - zero_word) if cfg.event_driven else 1.0
            out_zero_packet = (1.0 - out_rate) ** packet_bits
            out_packet_keep = (1.0 - out_zero_packet) if cfg.event_driven else 1.0

            # ---------------- input spike delivery -----------------------------
            input_words = math.ceil(layer.n_inputs / word_bits)
            is_first_layer = position == 0
            previous_stays = (
                mapped.placement.layers[position - 1].output_stays_in_neurocell
                if position > 0
                else False
            )
            bus_words_this_layer = 0.0
            if is_first_layer:
                # Broadcast from the input SRAM over the shared IO bus; the
                # tag mechanism delivers one word to every target NC per cycle.
                counters.input_sram_reads += input_words * word_keep * timesteps
                counters.io_bus_words += input_words * word_keep * timesteps
                counters.zero_checks += input_words * timesteps * (1 if cfg.event_driven else 0)
                counters.global_control_events += placement.neurocell_count * timesteps
                bus_words_this_layer = input_words * word_keep
            elif not previous_stays:
                # Inter-NeuroCell transfer: previous layer's spikes go through
                # the SRAM and back out over the bus (Fig. 7b).
                counters.input_sram_writes += input_words * word_keep * timesteps
                counters.input_sram_reads += input_words * word_keep * timesteps
                counters.io_bus_words += 2 * input_words * word_keep * timesteps
                counters.zero_checks += input_words * timesteps * (1 if cfg.event_driven else 0)
                counters.global_control_events += placement.neurocell_count * timesteps
                bus_words_this_layer = 2 * input_words * word_keep
            elif placement.neurocell_count > 1 and layer.kind in ("conv", "pool"):
                # Co-located spatially-local consumer: only the windows at the
                # NeuroCell perimeter need producer outputs from a neighbouring
                # cell, and that residual traffic rides the shared bus.
                boundary_words = input_words * cfg.neurocell_boundary_fraction
                counters.input_sram_writes += boundary_words * word_keep * timesteps
                counters.input_sram_reads += boundary_words * word_keep * timesteps
                counters.io_bus_words += 2 * boundary_words * word_keep * timesteps
                bus_words_this_layer = 2 * boundary_words * word_keep

            # ---------------- crossbar evaluation + integration -------------------
            layer_switch_packets = 0.0
            for group in partition.tile_groups:
                # Probability that a tile sees no spike at all this timestep.
                tile_zero = activity.zero_packet_fraction_for(group.rows_used)
                tile_keep = (1.0 - tile_zero) if cfg.event_driven else 1.0
                active_evals = group.count * tile_keep * timesteps

                read = self.crossbar_energy.read_cost(
                    rows=cfg.crossbar_rows,
                    columns=cfg.crossbar_columns,
                    active_rows=max(int(round(group.rows_used * rate)), 1),
                    utilisation=group.synapses_per_tile
                    / (cfg.crossbar_rows * cfg.crossbar_columns),
                )
                counters.crossbar_evaluations += active_evals
                counters.crossbar_device_energy_j += active_evals * (
                    read.energy_j
                    - read.active_rows * self.crossbar_energy.driver_energy_per_row_j
                    - read.active_columns * self.crossbar_energy.sense_energy_per_column_j
                )
                counters.crossbar_active_row_reads += active_evals * read.active_rows
                # Every column of the crossbar is sensed/integrated by its
                # neuron when the MCA fires, used or not — this is the
                # "peripheral energy per MCA" penalty of incomplete
                # utilisation the paper discusses in Section 5.1.
                counters.crossbar_column_senses += active_evals * cfg.crossbar_columns

                # mPE peripheral events per evaluation.  The input buffer spans
                # the full row range of the MCA; output packets carry only the
                # used columns.
                in_pkts_span = math.ceil(cfg.crossbar_rows / packet_bits)
                in_pkts_real = math.ceil(group.rows_used / packet_bits)
                out_pkts = math.ceil(group.columns_used / packet_bits)
                counters.ibuff_accesses += 2 * in_pkts_span * packet_keep * group.count * timesteps
                counters.obuff_accesses += 2 * out_pkts * out_packet_keep * group.count * timesteps
                counters.tbuff_accesses += out_pkts * out_packet_keep * group.count * timesteps
                counters.local_control_events += active_evals

                # Spike packets actually delivered to this tile through the
                # switch network (one hop inside the NeuroCell).
                tile_switch_packets = in_pkts_real * group.count
                counters.zero_checks += tile_switch_packets * timesteps * (1 if cfg.event_driven else 0)
                counters.switch_hops += tile_switch_packets * packet_keep * timesteps
                counters.suppressed_packets += (
                    tile_switch_packets * (1.0 - packet_keep) * timesteps
                )
                layer_switch_packets += tile_switch_packets * packet_keep

                # Neuron integration of every column of every active tile.
                counters.neuron_integrations += active_evals * cfg.crossbar_columns

            switch_cycles_per_step = layer_switch_packets / max(
                switches_per_nc * placement.neurocell_count, 1
            )
            communication_s += (
                (bus_words_this_layer + switch_cycles_per_step) * cfg.cycle_s * timesteps
            )

            # Partial sums that hop between MCAs/mPEs through the CCU gated wires.
            tmux = partition.time_multiplex_degree
            if tmux > 1:
                keep = packet_keep  # gated alongside the rest of the datapath
                counters.ccu_transfers += (
                    partition.external_current_transfers_per_timestep * keep * timesteps
                )

            # Output spikes of this layer (spike generation energy).
            counters.neuron_spikes += activity.total_output_spikes

            # Crossbar reads of successive time-multiplex stages overlap with
            # the integration of the previous stage, so a layer's compute
            # latency is one read followed by `tmux` integrations.
            layer_compute_s = (
                cfg.device.read_pulse_s + tmux * lib.neuron_integration_latency_s
            ) * timesteps
            compute_s += layer_compute_s

        latency.add("communication", communication_s)
        latency.add("compute", compute_s)
        duration_s = latency.total_s

        energy = counters_to_energy(
            counters,
            library=lib,
            crossbar_energy=self.crossbar_energy,
            label=label,
            active_mpes=mapped.total_mpes,
            active_switches=mapped.placement.total_switches,
            duration_s=duration_s,
            sram_access_energy_j=self.input_sram.access_energy_j(),
            sram_leakage_power_w=self.input_sram.leakage_power_w(),
        )
        return ResparcEvaluation(energy=energy, latency=latency, counters=counters, mapped=mapped)
