"""Serializable request/response schema of the serving API.

A server, queue worker or sweep harness needs results that can cross a
process boundary.  :class:`InferenceRequest` and :class:`InferenceResponse`
are the wire-level counterparts of the in-memory simulation types: plain
dataclasses whose :meth:`to_dict` / :meth:`from_dict` round-trip losslessly
through JSON (Python's ``json`` serialises floats with shortest round-trip
precision), carrying :class:`~repro.core.stats.EventCounters` and
:class:`~repro.energy.model.EnergyReport` via their own dict codecs.

The schema is versioned (``SCHEMA_VERSION``) so a deserialiser can reject
payloads written by an incompatible producer instead of mis-reading them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.stats import EventCounters
from repro.energy.model import EnergyReport

__all__ = ["SCHEMA_VERSION", "InferenceRequest", "InferenceResponse"]

#: Version tag embedded in every serialised response.
SCHEMA_VERSION = 1


def _as_batch(inputs: np.ndarray) -> np.ndarray:
    """Coerce request inputs to a flattened ``(batch, features)`` float array."""
    x = np.asarray(inputs, dtype=float)
    if x.ndim == 1:
        x = x[np.newaxis]
    return x.reshape(x.shape[0], -1)


@dataclass(frozen=True)
class InferenceRequest:
    """One batch of inputs for a :class:`~repro.serve.ChipSession`.

    Attributes
    ----------
    inputs:
        Intensity array of shape ``(batch, ...)`` (a single 1-D sample is
        promoted to a batch of one); trailing axes are flattened.
    labels:
        Optional integer labels; when present the response carries accuracy.
    timesteps:
        Per-request override of the session's rate-coding window.
    sample_offset:
        Absolute index of ``inputs[0]`` within the logical batch.  Used by
        :class:`~repro.serve.ChipPool` so a shard's stochastic encoding is
        identical to the same slice of a single full-batch request.
    """

    inputs: np.ndarray
    labels: np.ndarray | None = None
    timesteps: int | None = None
    sample_offset: int = 0

    def __post_init__(self) -> None:
        if self.timesteps is not None and self.timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {self.timesteps}")
        if self.sample_offset < 0:
            raise ValueError(f"sample_offset must be >= 0, got {self.sample_offset}")

    @property
    def batch(self) -> np.ndarray:
        """The inputs as a flattened ``(batch, features)`` array."""
        return _as_batch(self.inputs)

    @property
    def batch_size(self) -> int:
        """Number of samples in the request."""
        return self.batch.shape[0]

    def shard(self, start: int, stop: int) -> "InferenceRequest":
        """The sub-request covering samples ``[start, stop)`` of this batch."""
        x = self.batch
        labels = None
        if self.labels is not None:
            labels = np.asarray(self.labels)[start:stop]
        return replace(
            self,
            inputs=x[start:stop],
            labels=labels,
            sample_offset=self.sample_offset + start,
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible representation."""
        return {
            "schema_version": SCHEMA_VERSION,
            "inputs": self.batch.tolist(),
            "labels": None if self.labels is None else np.asarray(self.labels).tolist(),
            "timesteps": self.timesteps,
            "sample_offset": self.sample_offset,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "InferenceRequest":
        """Rebuild a request produced by :meth:`to_dict`."""
        _check_version(data)
        labels = data.get("labels")
        timesteps = data.get("timesteps")
        return cls(
            inputs=np.asarray(data["inputs"], dtype=float),
            labels=None if labels is None else np.asarray(labels, dtype=int),
            timesteps=None if timesteps is None else int(timesteps),
            sample_offset=int(data.get("sample_offset", 0)),
        )


@dataclass(frozen=True)
class InferenceResponse:
    """Outcome of one served inference batch.

    Mirrors :class:`~repro.core.simulator.ChipRunResult` (predictions, spike
    counts, accuracy, counters, energy) plus the serving metadata a client
    needs: the executing backend, the batch size and how many pool workers
    the batch was sharded across.
    """

    predictions: np.ndarray
    spike_counts: np.ndarray
    accuracy: float | None
    counters: EventCounters
    energy: EnergyReport
    timesteps: int
    backend: str
    batch_size: int
    jobs: int = 1
    metadata: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible representation (lossless float round trip)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "predictions": self.predictions.tolist(),
            "spike_counts": self.spike_counts.tolist(),
            "accuracy": self.accuracy,
            "counters": self.counters.as_dict(),
            "energy": self.energy.to_dict(),
            "timesteps": self.timesteps,
            "backend": self.backend,
            "batch_size": self.batch_size,
            "jobs": self.jobs,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "InferenceResponse":
        """Rebuild a response produced by :meth:`to_dict`."""
        _check_version(data)
        accuracy = data.get("accuracy")
        return cls(
            predictions=np.asarray(data["predictions"], dtype=int),
            spike_counts=np.asarray(data["spike_counts"], dtype=float),
            accuracy=None if accuracy is None else float(accuracy),
            counters=EventCounters.from_dict(data["counters"]),
            energy=EnergyReport.from_dict(data["energy"]),
            timesteps=int(data["timesteps"]),
            backend=str(data["backend"]),
            batch_size=int(data["batch_size"]),
            jobs=int(data.get("jobs", 1)),
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "InferenceResponse":
        """Deserialise from a JSON string."""
        return cls.from_dict(json.loads(payload))

    def as_run_result(self):
        """Convert to the legacy :class:`~repro.core.simulator.ChipRunResult`."""
        from repro.core.simulator import ChipRunResult

        return ChipRunResult(
            predictions=self.predictions,
            spike_counts=self.spike_counts,
            accuracy=self.accuracy,
            counters=self.counters,
            energy=self.energy,
            timesteps=self.timesteps,
            backend=self.backend,
        )


def _check_version(data: dict[str, object]) -> None:
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {version!r} (this build reads {SCHEMA_VERSION})"
        )
