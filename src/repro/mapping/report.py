"""Textual mapping reports.

The mapping compiler's results are easiest to review as small tables: one row
per layer with tile counts, time-multiplexing degrees and utilisation, plus a
design-level header.  :func:`mapping_report` renders that table;
:func:`compare_crossbar_sizes` renders the size-exploration table used when
discussing the technology-aware mapping claim.
"""

from __future__ import annotations

from repro.mapping.mapper import MappedNetwork, map_network
from repro.snn.conversion import SpikingNetwork
from repro.snn.network import Network

__all__ = ["mapping_report", "compare_crossbar_sizes"]


def mapping_report(mapped: MappedNetwork) -> str:
    """Render a per-layer mapping table for one mapped network."""
    header = (
        f"Mapping of {mapped.network_name!r} onto {mapped.crossbar_rows}x"
        f"{mapped.crossbar_columns} MCAs\n"
        f"  MCAs: {mapped.total_tiles}   mPEs: {mapped.total_mpes}   "
        f"NeuroCells: {mapped.total_neurocells}   "
        f"mean utilisation: {mapped.utilisation.mean_utilisation:.1%}\n"
    )
    lines = [
        header,
        f"  {'layer':<30} {'kind':<6} {'neurons':>9} {'fan-in':>7} "
        f"{'tiles':>7} {'tmux':>5} {'util':>7}",
    ]
    for partition in mapped.partitions:
        layer = partition.layer
        lines.append(
            f"  {layer.name:<30} {layer.kind:<6} {layer.n_outputs:>9} {layer.fan_in:>7} "
            f"{partition.tile_count:>7} {partition.time_multiplex_degree:>5} "
            f"{partition.utilisation:>7.1%}"
        )
    return "\n".join(lines)


def compare_crossbar_sizes(
    network: Network | SpikingNetwork,
    sizes: tuple[int, ...] = (32, 64, 128),
) -> str:
    """Render a table comparing resource usage across MCA sizes."""
    lines = [
        f"  {'MCA size':>9} {'tiles':>8} {'mPEs':>7} {'NCs':>5} "
        f"{'utilisation':>12} {'crosspoints':>12}"
    ]
    for size in sizes:
        mapped = map_network(network, crossbar_size=size)
        lines.append(
            f"  {size:>9} {mapped.total_tiles:>8} {mapped.total_mpes:>7} "
            f"{mapped.total_neurocells:>5} {mapped.utilisation.mean_utilisation:>12.1%} "
            f"{mapped.utilisation.total_crosspoints:>12}"
        )
    return "\n".join(lines)
