"""Tests for the analytical RESPARC model, the structural chip and their agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ArchitectureConfig,
    ChipSimulator,
    EventCounters,
    ResparcChip,
    ResparcModel,
    counters_to_energy,
)
from repro.crossbar import CrossbarEnergyModel, DeviceParameters
from repro.energy import DEFAULT_LIBRARY
from repro.mapping import map_network
from repro.snn import Dense, Network, SpikingSimulator, convert_to_snn
from repro.workloads import build_mnist_cnn, build_mnist_mlp


@pytest.fixture(scope="module")
def mlp_workload():
    """A reduced MNIST MLP with a measured activity trace."""
    from repro.datasets import make_dataset

    network = build_mnist_mlp(scale=0.25)
    dataset = make_dataset("mnist", train_samples=8, test_samples=8, seed=0)
    inputs = dataset.test_images.reshape(8, -1)
    snn = convert_to_snn(network, inputs[:4])
    trace = SpikingSimulator(timesteps=8, rng=np.random.default_rng(0)).run(snn, inputs[:2]).trace
    return network, trace


@pytest.fixture(scope="module")
def cnn_workload():
    from repro.datasets import make_dataset

    network = build_mnist_cnn(scale=0.25)
    dataset = make_dataset("mnist", train_samples=8, test_samples=8, seed=0)
    snn = convert_to_snn(network, dataset.test_images[:4])
    trace = (
        SpikingSimulator(timesteps=8, rng=np.random.default_rng(0))
        .run(snn, dataset.test_images[:2])
        .trace
    )
    return network, trace


class TestEventCounters:
    def test_merge_and_dict(self):
        a = EventCounters(crossbar_evaluations=2, switch_hops=3)
        b = EventCounters(crossbar_evaluations=1, io_bus_words=5)
        merged = a.merge(b)
        assert merged.crossbar_evaluations == 3
        assert merged.switch_hops == 3
        assert merged.io_bus_words == 5
        assert merged.total_events == pytest.approx(sum(merged.as_dict().values()))

    def test_counters_to_energy_groups(self):
        counters = EventCounters(
            crossbar_device_energy_j=1e-9,
            neuron_integrations=1000,
            ibuff_accesses=100,
            switch_hops=10,
            io_bus_words=5,
        )
        report = counters_to_energy(
            counters,
            library=DEFAULT_LIBRARY,
            crossbar_energy=CrossbarEnergyModel(),
            label="t",
            active_mpes=2,
            active_switches=1,
            duration_s=1e-6,
        )
        groups = report.grouped()
        assert groups["crossbar"] >= 1e-9
        assert groups["neuron"] > 0
        assert groups["peripherals"] > 0


class TestResparcModel:
    def test_energy_latency_positive_and_reported(self, mlp_workload):
        network, trace = mlp_workload
        evaluation = ResparcModel().evaluate(network, trace)
        assert evaluation.energy_per_classification_j > 0
        assert evaluation.latency_per_classification_s > 0
        groups = evaluation.energy.grouped()
        assert set(groups) >= {"crossbar", "neuron", "peripherals"}

    def test_accepts_premapped_network(self, mlp_workload):
        network, trace = mlp_workload
        model = ResparcModel()
        mapped = model.map(network)
        evaluation = model.evaluate(mapped, trace)
        assert evaluation.mapped is mapped

    def test_event_driven_saves_energy(self, mlp_workload):
        network, trace = mlp_workload
        on = ResparcModel(config=ArchitectureConfig(event_driven=True)).evaluate(network, trace)
        off = ResparcModel(config=ArchitectureConfig(event_driven=False)).evaluate(network, trace)
        assert on.energy_per_classification_j < off.energy_per_classification_j
        assert on.counters.suppressed_packets > 0
        assert off.counters.suppressed_packets == 0

    def test_mlp_energy_decreases_with_crossbar_size(self, mlp_workload):
        network, trace = mlp_workload
        energies = [
            ResparcModel(config=ArchitectureConfig().with_crossbar_size(size)).evaluate(network, trace).energy_per_classification_j
            for size in (32, 64, 128)
        ]
        assert energies[0] > energies[1] > energies[2]

    def test_cnn_peripheral_share_exceeds_mlp(self, mlp_workload, cnn_workload):
        mlp_net, mlp_trace = mlp_workload
        cnn_net, cnn_trace = cnn_workload
        model = ResparcModel()
        mlp_eval = model.evaluate(mlp_net, mlp_trace)
        cnn_eval = model.evaluate(cnn_net, cnn_trace)
        assert cnn_eval.mapped.utilisation.mean_utilisation < mlp_eval.mapped.utilisation.mean_utilisation

    def test_energy_scales_with_timesteps(self, mlp_workload):
        from repro.datasets import make_dataset

        network, _ = mlp_workload
        dataset = make_dataset("mnist", train_samples=8, test_samples=8, seed=0)
        inputs = dataset.test_images.reshape(8, -1)
        snn = convert_to_snn(network, inputs[:4])
        short = SpikingSimulator(timesteps=4, rng=np.random.default_rng(0)).run(snn, inputs[:2]).trace
        long = SpikingSimulator(timesteps=16, rng=np.random.default_rng(0)).run(snn, inputs[:2]).trace
        model = ResparcModel()
        e_short = model.evaluate(network, short).energy_per_classification_j
        e_long = model.evaluate(network, long).energy_per_classification_j
        assert e_long > 2 * e_short

    def test_precision_independence(self, mlp_workload):
        network, trace = mlp_workload
        energies = [
            ResparcModel(config=ArchitectureConfig().with_weight_bits(bits)).evaluate(network, trace).energy_per_classification_j
            for bits in (1, 4, 8)
        ]
        spread = max(energies) / min(energies)
        assert spread < 1.1  # essentially flat, unlike the CMOS baseline


class TestStructuralChip:
    def _small_snn(self, rng):
        network = Network(
            (20,),
            [
                Dense(20, 24, use_bias=False, rng=rng, name="fc1"),
                Dense(24, 6, activation=None, use_bias=False, rng=rng, name="out"),
            ],
            name="chip-mlp",
        )
        inputs = rng.random((6, 20))
        return convert_to_snn(network, inputs), inputs

    def test_chip_construction_matches_mapping(self, rng):
        snn, _ = self._small_snn(rng)
        config = ArchitectureConfig().with_crossbar_size(16)
        chip = ResparcChip.from_spiking_network(snn, config=config)
        mapped = map_network(snn, crossbar_size=16)
        assert chip.mca_count == mapped.total_tiles
        assert chip.required_neurocells() >= 1

    def test_chip_rejects_conv_networks(self, rng):
        cnn = build_mnist_cnn(scale=0.2)
        snn = convert_to_snn(cnn, np.random.default_rng(0).random((2, 28, 28, 1)))
        with pytest.raises(ValueError):
            ResparcChip.from_spiking_network(snn)

    def test_chip_spike_counts_match_reference_if_dynamics(self, rng):
        # The chip's output spike counts must match a NumPy IF simulation that
        # uses the chip's own (quantised) effective weights — an end-to-end
        # functional correctness check of the structural datapath.
        snn, inputs = self._small_snn(rng)
        config = ArchitectureConfig(
            crossbar_rows=16, crossbar_columns=16, device=DeviceParameters(levels=256)
        )
        simulator = ChipSimulator(config=config, timesteps=12, encoder="deterministic")
        chip = simulator.build_chip(snn)
        result = simulator.run(snn, inputs[:2], chip=chip)

        from repro.snn.encoding import DeterministicRateEncoder
        from repro.snn.neuron import IFNeuronParameters, IFNeuronPool

        weights = {i: chip.effective_layer_weights(i) for i in chip.layer_order}
        train = DeterministicRateEncoder().encode(inputs[:2].reshape(2, -1), 12)
        pools = {
            i: IFNeuronPool((2, weights[i].shape[1]), IFNeuronParameters(threshold=snn.threshold_for(i)))
            for i in chip.layer_order
        }
        for t in range(12):
            current = train[t]
            for i in chip.layer_order:
                current = pools[i].step(current @ weights[i])
        expected = pools[chip.layer_order[-1]].spike_count
        np.testing.assert_allclose(result.spike_counts, expected, atol=1e-9)

    def test_chip_counters_populated(self, rng):
        snn, inputs = self._small_snn(rng)
        simulator = ChipSimulator(
            config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16),
            timesteps=6,
            encoder="deterministic",
        )
        result = simulator.run(snn, inputs[:1])
        assert result.counters.crossbar_evaluations > 0
        assert result.counters.ibuff_accesses > 0
        assert result.counters.io_bus_words > 0
        assert result.energy.total_j > 0

    def test_structural_and_analytical_energy_same_order(self, rng):
        # The two models count events differently (measured vs expected
        # activity) but must land within a small factor of each other.
        snn, inputs = self._small_snn(rng)
        config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
        simulator = ChipSimulator(config=config, timesteps=10, encoder="deterministic")
        structural = simulator.run(snn, inputs[:2])

        functional = SpikingSimulator(timesteps=10, encoder="deterministic").run(snn, inputs[:2])
        analytical = ResparcModel(config=config).evaluate(snn, functional.trace)
        ratio = structural.energy.total_j / analytical.energy_per_classification_j / 2  # 2 samples
        assert 0.2 < ratio < 5.0

    def test_chip_simulator_validation(self):
        with pytest.raises(ValueError):
            ChipSimulator(timesteps=0)
        with pytest.raises(ValueError):
            ChipSimulator(encoder="other")
