"""Shared fixtures for the pytest-benchmark harness.

Each benchmark module regenerates one of the paper's tables/figures.  The
workload context is session scoped so the (comparatively expensive) spiking
simulation of each benchmark network runs once and every figure reuses it —
the same structure the experiment runner uses.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentSettings, WorkloadContext
from repro.loadlab.persist import persist_result as _persist_result

#: Where result documents land; CI uploads this directory as an artifact.
RESULTS_DIR = Path(
    os.environ.get("BENCH_RESULTS_DIR", Path(__file__).parent / "results")
)


@pytest.fixture(scope="session")
def persist_result():
    """The one write path for benchmark artifacts (versioned JSON schema).

    ``persist_result(name, section, payload)`` merges ``payload`` into the
    ``section`` key of ``benchmarks/results/{name}.json`` (or
    ``$BENCH_RESULTS_DIR/{name}.json``); ``path=`` overrides the full path
    for modules with their own legacy env knob, ``append=True`` grows a
    trajectory list instead of replacing the section.  The document format
    is :mod:`repro.loadlab.persist`'s — the same schema the load-lab CLI
    writes — so every artifact in the results directory parses alike.
    """

    def _persist(
        name: str,
        section: str,
        payload: object,
        *,
        append: bool = False,
        path: str | Path | None = None,
    ) -> dict:
        target = Path(path) if path is not None else RESULTS_DIR / f"{name}.json"
        return _persist_result(target, section, payload, append=append)

    return _persist


@pytest.fixture(scope="session")
def context() -> WorkloadContext:
    """Full-size benchmark networks with a reduced simulation window."""
    return WorkloadContext(ExperimentSettings.quick())


@pytest.fixture(scope="session")
def reduced_context() -> WorkloadContext:
    """Width-scaled networks for the heavier sweeps."""
    return WorkloadContext(
        ExperimentSettings(
            timesteps=6,
            eval_samples=2,
            train_samples=16,
            test_samples=8,
            train_epochs=0,
            network_scale=0.25,
            seed=7,
        )
    )
