"""Run-over-run regression comparison for the load-lab trajectory.

``python -m repro.loadlab compare`` diffs the two most recent sweep runs
in ``benchmarks/results/loadlab.json`` (the document ``persist_sweep``
appends to), cell by cell on matching ``(topology, load)`` keys:

* **throughput** — served requests/second dropping more than the threshold;
* **p95 queue wait** — rising more than the threshold *and* more than an
  absolute floor (sub-millisecond jitter on tiny cells is not a regression);
* **energy per request** — the serving stack is deterministic, so energy
  drift signals a real behavioural change, with a tight threshold;
* **latency distribution** — a Mann-Whitney U test over the stored
  per-request latency samples; a significant shift toward the latest run
  being slower is flagged even when the point percentiles pass.

The comparison is a *soft* gate: it always exits 0 and prints warnings,
because load-lab numbers ride shared CI runners — the trajectory document
is the evidence trail, and a human decides.  Wire it as a non-blocking CI
step after the sweep.
"""

from __future__ import annotations

import statistics
from pathlib import Path

from repro.loadlab.persist import default_results_dir, load_results
from repro.loadlab.stats import mann_whitney_u

__all__ = [
    "compare_latest_runs",
    "compare_runs",
    "median_baseline",
    "render_comparison",
]

#: Served-throughput drop that counts as a regression (fraction).
THROUGHPUT_DROP = 0.10
#: p95 queue-wait rise that counts as a regression (fraction).
P95_RISE = 0.25
#: Absolute p95 queue-wait rise floor — below this, jitter, not regression.
P95_FLOOR_S = 0.001
#: Energy-per-request rise that counts as a regression (fraction).
ENERGY_RISE = 0.05
#: Two-sided significance level for the latency-distribution test.
ALPHA = 0.05


def _cells_by_key(run: dict) -> dict[tuple[str, str], dict]:
    cells = run.get("cells") or []
    return {(cell["topology"], cell["load"]): cell for cell in cells}


def _compare_cell(
    key: tuple[str, str],
    previous: dict,
    latest: dict,
    *,
    throughput_drop: float,
    p95_rise: float,
    p95_floor_s: float,
    energy_rise: float,
    alpha: float,
) -> dict:
    topology, load = key
    warnings: list[str] = []

    prev_rps = float(previous.get("throughput_rps") or 0.0)
    last_rps = float(latest.get("throughput_rps") or 0.0)
    if prev_rps > 0 and last_rps < prev_rps * (1.0 - throughput_drop):
        warnings.append(
            f"throughput dropped {100 * (1 - last_rps / prev_rps):.1f}% "
            f"({prev_rps:.2f} -> {last_rps:.2f} rps)"
        )

    prev_p95 = (previous.get("queue_wait_s") or {}).get("p95")
    last_p95 = (latest.get("queue_wait_s") or {}).get("p95")
    if prev_p95 is not None and last_p95 is not None:
        rise = float(last_p95) - float(prev_p95)
        if rise > p95_floor_s and float(last_p95) > float(prev_p95) * (1.0 + p95_rise):
            warnings.append(
                f"p95 queue wait rose {1e3 * rise:.2f}ms "
                f"({1e3 * float(prev_p95):.2f} -> {1e3 * float(last_p95):.2f}ms)"
            )

    prev_energy = previous.get("energy_j_per_request")
    last_energy = latest.get("energy_j_per_request")
    if prev_energy and last_energy and (
        float(last_energy) > float(prev_energy) * (1.0 + energy_rise)
    ):
        warnings.append(
            f"energy/request rose "
            f"{100 * (float(last_energy) / float(prev_energy) - 1):.1f}% "
            f"({1e6 * float(prev_energy):.3f} -> {1e6 * float(last_energy):.3f} uJ)"
        )

    shift = None
    prev_samples = previous.get("latency_samples") or []
    last_samples = latest.get("latency_samples") or []
    if len(prev_samples) >= 3 and len(last_samples) >= 3:
        # effect > 0.5 means the first sample set tends to exceed the
        # second: the latest run is stochastically slower.
        shift = mann_whitney_u(last_samples, prev_samples)
        if shift["p"] < alpha and shift["effect"] > 0.5:
            warnings.append(
                f"latency distribution shifted slower "
                f"(Mann-Whitney U={shift['u']:.1f} effect={shift['effect']:.3f} "
                f"p={shift['p']:.4f})"
            )

    return {
        "topology": topology,
        "load": load,
        "throughput_rps": {"previous": prev_rps, "latest": last_rps},
        "queue_wait_p95_s": {"previous": prev_p95, "latest": last_p95},
        "energy_j_per_request": {"previous": prev_energy, "latest": last_energy},
        "latency_shift": shift,
        "warnings": warnings,
    }


def compare_runs(
    previous: dict,
    latest: dict,
    *,
    throughput_drop: float = THROUGHPUT_DROP,
    p95_rise: float = P95_RISE,
    p95_floor_s: float = P95_FLOOR_S,
    energy_rise: float = ENERGY_RISE,
    alpha: float = ALPHA,
) -> dict:
    """Diff two sweep run records cell-by-cell on (topology, load) keys."""
    previous_cells = _cells_by_key(previous)
    latest_cells = _cells_by_key(latest)
    matched = sorted(previous_cells.keys() & latest_cells.keys())
    cells = [
        _compare_cell(
            key,
            previous_cells[key],
            latest_cells[key],
            throughput_drop=throughput_drop,
            p95_rise=p95_rise,
            p95_floor_s=p95_floor_s,
            energy_rise=energy_rise,
            alpha=alpha,
        )
        for key in matched
    ]
    return {
        "previous_ran_at": previous.get("ran_at"),
        "latest_ran_at": latest.get("ran_at"),
        "matched_cells": len(matched),
        "unmatched_previous": sorted(
            map(list, previous_cells.keys() - latest_cells.keys())
        ),
        "unmatched_latest": sorted(
            map(list, latest_cells.keys() - previous_cells.keys())
        ),
        "cells": cells,
        "warnings": [
            f"{cell['topology']} × {cell['load']}: {warning}"
            for cell in cells
            for warning in cell["warnings"]
        ],
    }


def _median_or_none(values: list) -> float | None:
    cleaned = [float(v) for v in values if v is not None]
    return statistics.median(cleaned) if cleaned else None


def median_baseline(runs: list[dict]) -> dict:
    """A synthetic baseline run: the per-cell median over ``runs``.

    Scalar metrics (throughput, queue-wait percentiles, energy/request)
    take the cell-wise :func:`statistics.median`; latency samples are
    pooled across runs so the distribution test sees every baseline
    request.  Only cells present in *every* run survive — a cell that
    appeared or vanished mid-window has no stable baseline.  A single run
    passes through unchanged, so ``baseline_runs=1`` reproduces the
    classic previous-vs-latest comparison exactly.
    """
    if not runs:
        raise ValueError("median_baseline needs at least one run")
    if len(runs) == 1:
        return runs[0]
    keyed = [_cells_by_key(run) for run in runs]
    shared = sorted(set.intersection(*(set(k) for k in keyed)))
    cells = []
    for key in shared:
        members = [k[key] for k in keyed]
        waits = [m.get("queue_wait_s") or {} for m in members]
        samples: list[float] = []
        for member in members:
            samples.extend(member.get("latency_samples") or [])
        cells.append(
            {
                "topology": key[0],
                "load": key[1],
                "throughput_rps": _median_or_none(
                    [m.get("throughput_rps") for m in members]
                ),
                "queue_wait_s": {
                    "p95": _median_or_none([w.get("p95") for w in waits])
                },
                "energy_j_per_request": _median_or_none(
                    [m.get("energy_j_per_request") for m in members]
                ),
                "latency_samples": samples,
            }
        )
    return {
        "ran_at": f"median of {len(runs)} runs "
        f"({runs[0].get('ran_at')} .. {runs[-1].get('ran_at')})",
        "cells": cells,
    }


def compare_latest_runs(
    path: str | Path | None = None, *, baseline_runs: int = 1, **thresholds
) -> dict | None:
    """Compare the newest run against a baseline of the previous runs.

    ``baseline_runs=1`` (the default) diffs the two newest runs;
    ``baseline_runs=N`` compares the newest run against the
    :func:`median_baseline` of the up-to-N runs before it, so one noisy
    historical run on a shared CI runner cannot single-handedly flag (or
    mask) a regression.  Returns None (after printing a notice) when the
    document holds fewer than two runs — the first sweep of a fresh
    checkout has nothing to regress against.
    """
    if baseline_runs < 1:
        raise ValueError(f"baseline_runs must be >= 1, got {baseline_runs}")
    path = Path(path) if path else default_results_dir() / "loadlab.json"
    runs = load_results(path).get("runs")
    runs = [run for run in runs or [] if isinstance(run, dict) and run.get("cells")]
    if len(runs) < 2:
        print(
            f"[loadlab] compare: {path} holds {len(runs)} sweep run(s); "
            f"need 2 — nothing to compare yet"
        )
        return None
    baseline = median_baseline(runs[-1 - baseline_runs : -1])
    report = compare_runs(baseline, runs[-1], **thresholds)
    report["path"] = str(path)
    report["baseline_runs"] = min(baseline_runs, len(runs) - 1)
    return report


def render_comparison(report: dict) -> str:
    """Human-readable comparison summary (what the CI log shows)."""
    lines = [
        f"[loadlab] compare: {report.get('path', '<in-memory>')} — "
        f"{report['matched_cells']} matched cell(s), "
        f"latest {report.get('latest_ran_at')} vs "
        f"previous {report.get('previous_ran_at')}"
    ]
    for cells, label in (
        (report["unmatched_previous"], "dropped since previous"),
        (report["unmatched_latest"], "new in latest"),
    ):
        if cells:
            lines.append(
                f"[loadlab] compare: unmatched ({label}): "
                + ", ".join("×".join(key) for key in cells)
            )
    if report["warnings"]:
        lines.append(
            f"[loadlab] compare: {len(report['warnings'])} WARNING(s) — "
            f"soft gate, exit stays 0:"
        )
        lines.extend(f"[loadlab]   WARNING {text}" for text in report["warnings"])
    else:
        lines.append("[loadlab] compare: no regressions flagged")
    return "\n".join(lines)
