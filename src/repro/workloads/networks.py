"""The six benchmark SNNs of the paper (Fig. 10).

The paper specifies its benchmarks only by dataset, connectivity type, layer
count and total neuron/synapse counts.  The concrete layer shapes below were
reconstructed so that the totals match the published numbers (exactly for
neuron counts, within a few percent for synapse counts — see DESIGN.md and
EXPERIMENTS.md for the comparison table).  Convolutional benchmarks use
LeNet-style sparse connection tables (``in_channel_limit=1``) in their second
convolution, which is what keeps the published synapse counts as low as they
are.

Every builder accepts a ``scale`` factor so the same topologies can be built
at reduced width for fast tests, and an ``rng`` for reproducible weight
initialisation.
"""

from __future__ import annotations

import numpy as np

from repro.snn.layers import AvgPool2D, Conv2D, Dense, Flatten
from repro.snn.network import Network
from repro.utils.rng import derive_rng

__all__ = [
    "build_mnist_mlp",
    "build_svhn_mlp",
    "build_cifar10_mlp",
    "build_mnist_cnn",
    "build_svhn_cnn",
    "build_cifar10_cnn",
]


def _scaled(value: int, scale: float, minimum: int = 4) -> int:
    """Scale a layer width, keeping it at least ``minimum``."""
    return max(int(round(value * scale)), minimum)


def _mlp(
    name: str,
    input_size: int,
    hidden_sizes: tuple[int, ...],
    classes: int,
    scale: float,
    rng: np.random.Generator,
) -> Network:
    """Build an MLP with ReLU hidden layers and a linear output layer."""
    layers = []
    previous = input_size
    for index, width in enumerate(hidden_sizes):
        width = _scaled(width, scale)
        layers.append(
            Dense(previous, width, activation="relu", use_bias=False, rng=rng, name=f"fc{index + 1}")
        )
        previous = width
    layers.append(
        Dense(previous, classes, activation=None, use_bias=False, rng=rng, name="output")
    )
    return Network((input_size,), layers, name=name)


def _cnn(
    name: str,
    input_shape: tuple[int, int, int],
    conv1_channels: int,
    conv2_channels: int,
    fc_width: int,
    classes: int,
    scale: float,
    rng: np.random.Generator,
) -> Network:
    """Build the 6-layer CNN template: conv-pool-conv-pool-fc-fc."""
    height, width, channels = input_shape
    c1 = _scaled(conv1_channels, scale)
    c2 = _scaled(conv2_channels, scale)
    fc = _scaled(fc_width, scale)
    conv1 = Conv2D(
        channels, c1, kernel_size=5, padding="same", in_channel_limit=1,
        activation="relu", use_bias=False, rng=rng, name="conv1",
    )
    pool1 = AvgPool2D(2, name="pool1")
    conv2 = Conv2D(
        c1, c2, kernel_size=5, padding="same", in_channel_limit=1,
        activation="relu", use_bias=False, rng=rng, name="conv2",
    )
    pool2 = AvgPool2D(2, name="pool2")
    flat_size = (height // 4) * (width // 4) * c2
    fc1 = Dense(flat_size, fc, activation="relu", use_bias=False, rng=rng, name="fc1")
    fc2 = Dense(fc, classes, activation=None, use_bias=False, rng=rng, name="output")
    return Network(input_shape, [conv1, pool1, conv2, pool2, Flatten(), fc1, fc2], name=name)


# ---------------------------------------------------------------------------
# MLP benchmarks
# ---------------------------------------------------------------------------


def build_mnist_mlp(scale: float = 1.0, seed: int = 0) -> Network:
    """MNIST MLP: 784-803-1565-10 (paper: 4 layers, 2,378 neurons, 1.90M synapses)."""
    rng = derive_rng(seed, "mnist_mlp")
    return _mlp("mnist-mlp", 784, (803, 1565), 10, scale, rng)


def build_svhn_mlp(scale: float = 1.0, seed: int = 0) -> Network:
    """SVHN MLP: 3072-518-2250-10 (paper: 4 layers, 2,778 neurons, 2.78M synapses)."""
    rng = derive_rng(seed, "svhn_mlp")
    return _mlp("svhn-mlp", 3072, (518, 2250), 10, scale, rng)


def build_cifar10_mlp(scale: float = 1.0, seed: int = 0) -> Network:
    """CIFAR-10 MLP: 3072-1000-190-2578-10 (paper: 5 layers, 3,778 neurons, 3.78M synapses)."""
    rng = derive_rng(seed, "cifar10_mlp")
    return _mlp("cifar10-mlp", 3072, (1000, 190, 2578), 10, scale, rng)


# ---------------------------------------------------------------------------
# CNN benchmarks
# ---------------------------------------------------------------------------


def build_mnist_cnn(scale: float = 1.0, seed: int = 0) -> Network:
    """MNIST CNN: 28x28 - conv5@64 - pool - conv5@16 - pool - fc128 - fc10.

    Paper: 6 layers, 66,778 neurons, 1.48M synapses; this reconstruction has
    exactly 66,778 neurons and 1.49M synapses at ``scale=1``.
    """
    rng = derive_rng(seed, "mnist_cnn")
    return _cnn("mnist-cnn", (28, 28, 1), 64, 16, 128, 10, scale, rng)


def build_svhn_cnn(scale: float = 1.0, seed: int = 0) -> Network:
    """SVHN CNN: 32x32x3 - conv5@93 - pool - conv5@16 - pool - fc400 - fc10.

    Paper: 6 layers, 124,570 neurons, 2.94M synapses; this reconstruction has
    exactly 124,570 neurons and ~3.0M synapses at ``scale=1``.
    """
    rng = derive_rng(seed, "svhn_cnn")
    return _cnn("svhn-cnn", (32, 32, 3), 93, 16, 400, 10, scale, rng)


def build_cifar10_cnn(scale: float = 1.0, seed: int = 0) -> Network:
    """CIFAR-10 CNN: 32x32x3 - conv5@171 - pool - conv5@37 - pool - fc336 - fc10.

    Paper: 6 layers, 231,066 neurons, 5.52M synapses; this reconstruction has
    exactly 231,066 neurons and ~5.6M synapses at ``scale=1``.
    """
    rng = derive_rng(seed, "cifar10_cnn")
    return _cnn("cifar10-cnn", (32, 32, 3), 171, 37, 336, 10, scale, rng)
