"""Run-over-run load-lab comparison: thresholds, statistics, soft exit.

The compare tool is CI's memory: it diffs the two newest sweep runs in
the persisted trajectory and warns on regressions without ever failing
the build.  These tests feed it synthetic run records, so every threshold
(throughput drop, p95 rise with its absolute floor, energy rise, the
Mann-Whitney latency shift) is exercised deterministically.
"""

from __future__ import annotations

import json

import pytest

from repro.loadlab.compare import (
    compare_latest_runs,
    compare_runs,
    median_baseline,
    render_comparison,
)
from repro.loadlab.persist import persist_result
from repro.loadlab.__main__ import main as loadlab_main


def _cell(
    topology: str = "server",
    load: str = "closed-c1",
    *,
    throughput_rps: float = 10.0,
    p95_s: float = 0.05,
    energy_j: float = 2e-6,
    latency_samples: list[float] | None = None,
) -> dict:
    return {
        "topology": topology,
        "load": load,
        "throughput_rps": throughput_rps,
        "queue_wait_s": {"p95": p95_s},
        "energy_j_per_request": energy_j,
        "latency_samples": latency_samples
        or [0.01, 0.011, 0.012, 0.013, 0.014, 0.015],
    }


def _run(cells: list[dict], ran_at: str = "2026-01-01T00:00:00Z") -> dict:
    return {"kind": "sweep", "ran_at": ran_at, "cells": cells}


class TestCompareRuns:
    def test_identical_runs_raise_no_warnings(self):
        run = _run([_cell(), _cell(topology="gateway")])
        report = compare_runs(run, run)
        assert report["matched_cells"] == 2
        assert report["warnings"] == []
        assert "no regressions flagged" in render_comparison(report)

    def test_all_regression_classes_flagged(self):
        fast = [0.010 + 0.0001 * i for i in range(12)]
        slow = [0.030 + 0.0001 * i for i in range(12)]
        previous = _run([_cell(latency_samples=fast)])
        latest = _run(
            [
                _cell(
                    throughput_rps=5.0,  # -50%
                    p95_s=0.5,  # 10x, far past the 1ms floor
                    energy_j=3e-6,  # +50%
                    latency_samples=slow,
                )
            ],
            ran_at="2026-01-02T00:00:00Z",
        )
        report = compare_runs(previous, latest)
        text = "\n".join(report["warnings"])
        assert "throughput dropped" in text
        assert "p95 queue wait rose" in text
        assert "energy/request rose" in text
        assert "latency distribution shifted slower" in text

    def test_p95_floor_suppresses_microscopic_rises(self):
        # 3x relative rise but only 0.2ms absolute: jitter, not regression.
        previous = _run([_cell(p95_s=0.0001)])
        latest = _run([_cell(p95_s=0.0003)])
        report = compare_runs(previous, latest)
        assert report["warnings"] == []

    def test_faster_latest_is_never_flagged(self):
        slow = [0.030 + 0.0001 * i for i in range(12)]
        fast = [0.010 + 0.0001 * i for i in range(12)]
        report = compare_runs(
            _run([_cell(throughput_rps=5.0, p95_s=0.5, latency_samples=slow)]),
            _run([_cell(throughput_rps=10.0, p95_s=0.05, latency_samples=fast)]),
        )
        assert report["warnings"] == []

    def test_unmatched_cells_reported_not_compared(self):
        report = compare_runs(
            _run([_cell(), _cell(topology="retired")]),
            _run([_cell(), _cell(topology="brand-new")]),
        )
        assert report["matched_cells"] == 1
        assert ["retired", "closed-c1"] in report["unmatched_previous"]
        assert ["brand-new", "closed-c1"] in report["unmatched_latest"]
        assert "unmatched" in render_comparison(report)


class TestMedianBaseline:
    def test_single_run_passes_through_unchanged(self):
        run = _run([_cell()])
        assert median_baseline([run]) is run

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            median_baseline([])

    def test_medians_scalars_and_pools_samples(self):
        runs = [
            _run([_cell(throughput_rps=8.0, p95_s=0.04, latency_samples=[0.01])]),
            _run([_cell(throughput_rps=10.0, p95_s=0.06, latency_samples=[0.02])]),
            _run([_cell(throughput_rps=50.0, p95_s=0.05, latency_samples=[0.03])]),
        ]
        baseline = median_baseline(runs)
        cell = baseline["cells"][0]
        assert cell["throughput_rps"] == 10.0  # median, not mean: 50 is ignored
        assert cell["queue_wait_s"]["p95"] == 0.05
        assert cell["latency_samples"] == [0.01, 0.02, 0.03]
        assert "median of 3 runs" in baseline["ran_at"]

    def test_only_cells_present_in_every_run_survive(self):
        runs = [
            _run([_cell(), _cell(topology="gateway")]),
            _run([_cell()]),
        ]
        baseline = median_baseline(runs)
        assert [c["topology"] for c in baseline["cells"]] == ["server"]

    def test_median_window_absorbs_one_noisy_run(self, tmp_path):
        """throughputs [10, 10, 100, 10]: vs-previous compares against the
        100-rps outlier and cries wolf; a 3-run median baseline stays quiet."""
        path = tmp_path / "loadlab.json"
        for i, rps in enumerate([10.0, 10.0, 100.0, 10.0]):
            persist_result(
                path, "runs", _run([_cell(throughput_rps=rps)], ran_at=f"t{i}"),
                append=True,
            )
        noisy = compare_latest_runs(path, baseline_runs=1)
        assert any("throughput dropped" in w for w in noisy["warnings"])
        robust = compare_latest_runs(path, baseline_runs=3)
        assert robust["warnings"] == []
        assert robust["baseline_runs"] == 3
        assert "median of 3 runs" in robust["previous_ran_at"]

    def test_window_larger_than_history_uses_what_exists(self, tmp_path):
        path = tmp_path / "loadlab.json"
        for i in range(3):
            persist_result(
                path, "runs", _run([_cell()], ran_at=f"t{i}"), append=True
            )
        report = compare_latest_runs(path, baseline_runs=10)
        assert report["baseline_runs"] == 2
        assert report["warnings"] == []

    def test_invalid_baseline_runs_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="baseline_runs"):
            compare_latest_runs(tmp_path / "loadlab.json", baseline_runs=0)


class TestCompareCli:
    def _write_runs(self, path, runs):
        for run in runs:
            persist_result(path, "runs", run, append=True)

    def test_fewer_than_two_runs_is_a_clean_noop(self, tmp_path, capsys):
        path = tmp_path / "loadlab.json"
        assert compare_latest_runs(path) is None
        assert "nothing to compare" in capsys.readouterr().out
        self._write_runs(path, [_run([_cell()])])
        assert loadlab_main(["compare", "--input", str(path)]) == 0
        assert "1 sweep run(s)" in capsys.readouterr().out

    def test_compares_newest_two_and_exits_zero_despite_warnings(
        self, tmp_path, capsys
    ):
        path = tmp_path / "loadlab.json"
        self._write_runs(
            path,
            [
                _run([_cell(throughput_rps=99.0)], ran_at="old"),
                _run([_cell(throughput_rps=10.0)], ran_at="mid"),
                _run([_cell(throughput_rps=5.0)], ran_at="new"),
            ],
        )
        # A regression between the two newest runs still exits 0 (soft gate).
        assert loadlab_main(["compare", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "WARNING" in out
        assert "throughput dropped 50.0%" in out
        assert "latest new vs previous mid" in out

    def test_baseline_runs_flag(self, tmp_path, capsys):
        path = tmp_path / "loadlab.json"
        self._write_runs(
            path,
            [
                _run([_cell(throughput_rps=10.0)], ran_at="a"),
                _run([_cell(throughput_rps=100.0)], ran_at="noisy"),
                _run([_cell(throughput_rps=10.0)], ran_at="new"),
            ],
        )
        assert loadlab_main(
            ["compare", "--input", str(path), "--baseline-runs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "median of 2 runs" in out
        # Median of [10, 100] is 55 rps, so the drop is still flagged — but
        # the rendered baseline makes the window explicit.
        assert "WARNING" in out

    def test_json_output_parses(self, tmp_path, capsys):
        path = tmp_path / "loadlab.json"
        self._write_runs(path, [_run([_cell()]), _run([_cell()])])
        assert loadlab_main(["compare", "--input", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["matched_cells"] == 1
        assert report["warnings"] == []
