"""Shared fixtures for the RESPARC reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_dataset
from repro.snn import AvgPool2D, Conv2D, Dense, Flatten, Network, SpikingSimulator, convert_to_snn
from repro.utils.rng import seeded_rng


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator shared by tests."""
    return seeded_rng(1234)


@pytest.fixture
def small_mlp(rng: np.random.Generator) -> Network:
    """A small dense network (MLP) used across architecture tests."""
    return Network(
        (36,),
        [
            Dense(36, 20, activation="relu", use_bias=False, rng=rng, name="fc1"),
            Dense(20, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="small-mlp",
    )


@pytest.fixture
def small_cnn(rng: np.random.Generator) -> Network:
    """A small convolutional network used across architecture tests."""
    return Network(
        (12, 12, 1),
        [
            Conv2D(1, 6, kernel_size=3, padding="same", use_bias=False, rng=rng, name="conv1"),
            AvgPool2D(2, name="pool1"),
            Flatten(),
            Dense(6 * 6 * 6, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="small-cnn",
    )


@pytest.fixture
def mnist_like_batch(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A tiny MNIST-like (images, labels) batch."""
    dataset = make_dataset("mnist", train_samples=24, test_samples=12, seed=3)
    return dataset.test_images, dataset.test_labels


@pytest.fixture
def traced_small_mlp(small_mlp, rng):
    """A converted small MLP together with an activity trace."""
    inputs = rng.random((6, 36))
    snn = convert_to_snn(small_mlp, inputs)
    simulator = SpikingSimulator(timesteps=12, encoder="deterministic")
    result = simulator.run(snn, inputs[:4])
    return snn, result.trace
