"""The fused kernel against the per-tile reference loop — bit for bit.

:meth:`VectorizedChipEngine.run_batch` packs each layer's tiles into one
stacked tensor and evaluates it as a single batched matmul per timestep;
:meth:`VectorizedChipEngine.run_batch_reference` keeps the original
``timesteps × layers × tiles`` loop alive as the parity oracle.  The
contract is *bit identity*, not approximation: the fused kernel reorders
no accumulation the reference performs (partial sums land in placement
order, scale/LSB stay separate elementwise passes), so predictions, spike
counts, every integer event counter and the crossbar energy must match
exactly across arbitrary geometries.  The hypothesis suite drives that
across ragged tile splits, single-tile layers, batch 1 and both
event-driven settings; the deterministic tests pin the plan/arena and
plan-cache mechanics.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ArchitectureConfig, ChipSimulator
from repro.fastpath import KernelPlan, PlanCache, VectorizedChipEngine
from repro.snn import Dense, Network, convert_to_snn


def _engine(dims, *, crossbar, event_driven, seed=0, mcas_per_mpe=2):
    """A compiled engine for an MLP with the given layer widths."""
    rng = np.random.default_rng(seed)
    layers = []
    for i, (n_in, n_out) in enumerate(zip(dims[:-1], dims[1:])):
        last = i == len(dims) - 2
        layers.append(
            Dense(
                n_in,
                n_out,
                activation=None if last else "relu",
                use_bias=False,
                rng=rng,
                name=f"fc{i}",
            )
        )
    network = Network((dims[0],), layers, name=f"fused-{'x'.join(map(str, dims))}")
    snn = convert_to_snn(network, rng.random((8, dims[0])))
    config = ArchitectureConfig(
        crossbar_rows=crossbar,
        crossbar_columns=crossbar,
        event_driven=event_driven,
        mcas_per_mpe=mcas_per_mpe,
    )
    chip = ChipSimulator(config=config).build_chip(snn)
    return VectorizedChipEngine.from_chip(chip)


def _assert_bit_identical(reference, fused):
    np.testing.assert_array_equal(reference.predictions, fused.predictions)
    np.testing.assert_array_equal(reference.spike_counts, fused.spike_counts)
    ref_counts = reference.counters.as_dict()
    fused_counts = fused.counters.as_dict()
    for name, ref_value in ref_counts.items():
        if name == "crossbar_device_energy_j":
            assert fused_counts[name] == pytest.approx(ref_value, rel=1e-9)
        else:
            assert fused_counts[name] == ref_value, (
                f"counter {name}: reference={ref_value} fused={fused_counts[name]}"
            )


class TestFusedKernelProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        dims=st.lists(st.integers(min_value=3, max_value=40), min_size=2, max_size=4),
        crossbar=st.sampled_from([8, 16]),
        event_driven=st.booleans(),
        batch=st.sampled_from([1, 3]),
        timesteps=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_fused_matches_reference(
        self, dims, crossbar, event_driven, batch, timesteps, seed
    ):
        """Randomized geometries: ragged splits, tiny layers, batch 1."""
        engine = _engine(
            tuple(dims), crossbar=crossbar, event_driven=event_driven, seed=seed
        )
        rng = np.random.default_rng(seed + 1)
        train = (rng.random((timesteps, batch, dims[0])) > 0.5).astype(float)
        _assert_bit_identical(
            engine.run_batch_reference(train), engine.run_batch(train)
        )

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        event_driven=st.booleans(),
    )
    def test_fractional_intensity_parity(self, seed, event_driven):
        """Non-binary spike trains (rate-coded intensities) stay identical."""
        engine = _engine((20, 9, 5), crossbar=8, event_driven=event_driven, seed=seed)
        rng = np.random.default_rng(seed)
        train = rng.random((3, 4, 20))
        train[train < 0.4] = 0.0
        _assert_bit_identical(
            engine.run_batch_reference(train), engine.run_batch(train)
        )


class TestFusedKernelDeterministic:
    def test_single_tile_layer(self):
        """A network that fits one crossbar per layer (n_tiles == 1)."""
        engine = _engine((6, 4), crossbar=8, event_driven=True)
        train = np.ones((2, 1, 6))
        _assert_bit_identical(
            engine.run_batch_reference(train), engine.run_batch(train)
        )

    def test_plan_reuse_resets_state(self):
        """The same plan must give identical outcomes run after run."""
        engine = _engine((24, 12, 6), crossbar=8, event_driven=True)
        rng = np.random.default_rng(3)
        train = (rng.random((4, 5, 24)) > 0.5).astype(float)
        plan = KernelPlan(engine.program, 5, 4)
        first = engine.run_batch(train, plan=plan)
        second = engine.run_batch(train, plan=plan)
        np.testing.assert_array_equal(first.predictions, second.predictions)
        np.testing.assert_array_equal(first.spike_counts, second.spike_counts)
        assert first.counters.as_dict() == second.counters.as_dict()

    def test_outcome_does_not_alias_arena(self):
        """Spike counts returned by one run survive the next run's reuse."""
        engine = _engine((24, 12, 6), crossbar=8, event_driven=True)
        rng = np.random.default_rng(4)
        plan = KernelPlan(engine.program, 5, 4)
        train_a = (rng.random((4, 5, 24)) > 0.7).astype(float)
        train_b = (rng.random((4, 5, 24)) > 0.2).astype(float)
        outcome_a = engine.run_batch(train_a, plan=plan)
        saved = outcome_a.spike_counts.copy()
        engine.run_batch(train_b, plan=plan)
        np.testing.assert_array_equal(outcome_a.spike_counts, saved)

    def test_plan_shape_mismatch_raises(self):
        engine = _engine((12, 6), crossbar=8, event_driven=True)
        plan = KernelPlan(engine.program, 2, 3)
        with pytest.raises(ValueError, match="batch=2"):
            engine.run_batch(np.ones((3, 4, 12)), plan=plan)
        with pytest.raises(ValueError, match="timesteps=3"):
            engine.run_batch(np.ones((5, 2, 12)), plan=plan)

    def test_plan_program_mismatch_raises(self):
        engine_a = _engine((12, 6), crossbar=8, event_driven=True, seed=0)
        engine_b = _engine((12, 6), crossbar=8, event_driven=True, seed=1)
        plan = KernelPlan(engine_a.program, 2, 3)
        with pytest.raises(ValueError, match="different program"):
            engine_b.run_batch(np.ones((3, 2, 12)), plan=plan)

    def test_invalid_plan_shapes_rejected(self):
        engine = _engine((12, 6), crossbar=8, event_driven=True)
        with pytest.raises(ValueError, match="batch"):
            KernelPlan(engine.program, 0, 3)
        with pytest.raises(ValueError, match="timesteps"):
            KernelPlan(engine.program, 2, 0)


class TestPlanCache:
    def test_hit_miss_and_reuse(self):
        engine = _engine((12, 6), crossbar=8, event_driven=True)
        cache = PlanCache()
        plan_a, hit_a = cache.get(engine.program, 4, 3)
        plan_b, hit_b = cache.get(engine.program, 4, 3)
        plan_c, hit_c = cache.get(engine.program, 8, 3)
        assert (hit_a, hit_b, hit_c) == (False, True, False)
        assert plan_a is plan_b and plan_a is not plan_c
        assert cache.stats() == {"hits": 1, "misses": 2, "size": 2}

    def test_lru_eviction(self):
        engine = _engine((12, 6), crossbar=8, event_driven=True)
        cache = PlanCache(capacity=2)
        cache.get(engine.program, 1, 1)
        cache.get(engine.program, 2, 1)
        cache.get(engine.program, 1, 1)  # refresh batch=1
        cache.get(engine.program, 3, 1)  # evicts batch=2
        assert len(cache) == 2
        _, hit = cache.get(engine.program, 1, 1)
        assert hit
        _, hit = cache.get(engine.program, 2, 1)
        assert not hit

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(capacity=0)


class TestSessionPlanCache:
    def test_session_reuses_plans_and_reports_metadata(self):
        from repro.serve import ChipSession, InferenceRequest
        from repro.serve.metrics import MetricsRegistry

        rng = np.random.default_rng(11)
        network = Network(
            (16,),
            [Dense(16, 5, activation=None, use_bias=False, rng=rng, name="out")],
            name="cache-mlp",
        )
        snn = convert_to_snn(network, rng.random((6, 16)))
        registry = MetricsRegistry()
        session = ChipSession(
            snn,
            config=ArchitectureConfig(crossbar_rows=8, crossbar_columns=8),
            timesteps=4,
            seed=0,
            registry=registry,
        )
        request = InferenceRequest(inputs=rng.random((3, 16)))
        first = session.infer(request)
        second = session.infer(request)
        assert first.metadata["plan"]["cache"] == "miss"
        assert first.metadata["plan"]["build_s"] >= 0.0
        assert second.metadata["plan"]["cache"] == "hit"
        assert session.plan_cache.stats() == {"hits": 1, "misses": 1, "size": 1}
        families = registry.snapshot()["families"]
        assert (
            families["repro_session_plan_cache_hits_total"]["series"][0]["value"] == 1
        )
        assert (
            families["repro_session_plan_cache_misses_total"]["series"][0]["value"] == 1
        )
        # Caching must not change the served result.
        np.testing.assert_array_equal(first.predictions, second.predictions)
        np.testing.assert_array_equal(first.spike_counts, second.spike_counts)

    def test_structural_session_has_no_plan_cache(self):
        rng = np.random.default_rng(12)
        network = Network(
            (8,),
            [Dense(8, 4, activation=None, use_bias=False, rng=rng, name="out")],
            name="structural-mlp",
        )
        snn = convert_to_snn(network, rng.random((4, 8)))
        from repro.serve import ChipSession, InferenceRequest

        session = ChipSession(
            snn,
            config=ArchitectureConfig(crossbar_rows=8, crossbar_columns=8),
            timesteps=2,
            backend="structural",
            seed=0,
        )
        assert session.plan_cache is None
        response = session.infer(InferenceRequest(inputs=rng.random((2, 8))))
        assert "plan" not in response.metadata
