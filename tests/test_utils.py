"""Tests for repro.utils (units, validation, rng, logging)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.logging import RunLogger
from repro.utils.rng import derive_rng, seeded_rng, stable_seed
from repro.utils.units import (
    format_energy,
    format_frequency,
    format_power,
    format_time,
    from_engineering,
    to_engineering,
)
from repro.utils.validation import (
    check_in_choices,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability,
    check_shape,
    check_type,
)


class TestUnits:
    def test_format_energy_nanojoule(self):
        assert format_energy(12.3e-9) == "12.3 nJ"

    def test_format_power_milliwatt(self):
        assert format_power(53.2e-3) == "53.2 mW"

    def test_format_time_microsecond(self):
        assert format_time(2.5e-6) == "2.5 us"

    def test_format_frequency_megahertz(self):
        assert format_frequency(200e6) == "200 MHz"

    def test_format_zero(self):
        assert format_energy(0.0) == "0 J"

    def test_to_engineering_negative_value(self):
        assert to_engineering(-1.5e-3, "J").startswith("-1.5")

    def test_from_engineering_mhz(self):
        assert from_engineering("200 MHz") == pytest.approx(200e6)

    def test_from_engineering_kohm(self):
        assert from_engineering("20kOhm") == pytest.approx(20e3)

    def test_from_engineering_plain_number(self):
        assert from_engineering("42") == pytest.approx(42.0)

    def test_from_engineering_single_char_unit_is_not_prefix(self):
        # "5 V" should parse as 5 volts, not 5e-3 of anything.
        assert from_engineering("5 V") == pytest.approx(5.0)

    def test_from_engineering_rejects_garbage(self):
        with pytest.raises(ValueError):
            from_engineering("not a number")

    def test_from_engineering_rejects_empty(self):
        with pytest.raises(ValueError):
            from_engineering("   ")

    @given(st.floats(min_value=1e-18, max_value=1e12, allow_nan=False))
    def test_roundtrip_within_prefix_precision(self, value):
        text = to_engineering(value, "J", precision=9)
        parsed = from_engineering(text)
        assert parsed == pytest.approx(value, rel=1e-6)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 3.0) == 3.0

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_check_positive_allows_zero_when_asked(self):
        assert check_positive("x", 0.0, allow_zero=True) == 0.0

    def test_check_positive_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))

    def test_check_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_choices(self):
        assert check_in_choices("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError):
            check_in_choices("mode", "c", ("a", "b"))

    def test_check_type(self):
        assert check_type("x", 3, int) == 3
        with pytest.raises(TypeError):
            check_type("x", "3", int)

    def test_check_shape_wildcards(self):
        arr = np.zeros((3, 4))
        assert check_shape("arr", arr, (None, 4)).shape == (3, 4)
        with pytest.raises(ValueError):
            check_shape("arr", arr, (3, 5))
        with pytest.raises(ValueError):
            check_shape("arr", arr, (3, 4, 1))

    def test_check_power_of_two(self):
        assert check_power_of_two("n", 64) == 64
        with pytest.raises(ValueError):
            check_power_of_two("n", 48)


class TestRng:
    def test_seeded_rng_reproducible(self):
        assert seeded_rng(7).random() == seeded_rng(7).random()

    def test_stable_seed_is_stable(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)
        assert stable_seed("a", 1) != stable_seed("a", 2)

    def test_derive_rng_independent_streams(self):
        a = derive_rng(0, "dataset", "mnist").random(5)
        b = derive_rng(0, "dataset", "svhn").random(5)
        assert not np.allclose(a, b)

    def test_derive_rng_reproducible(self):
        a = derive_rng(3, "x").random(4)
        b = derive_rng(3, "x").random(4)
        np.testing.assert_allclose(a, b)


class TestRunLogger:
    def test_records_levels_and_messages(self):
        logger = RunLogger(name="t")
        logger.info("hello")
        logger.warning("careful")
        logger.result("42")
        assert logger.messages() == ["hello", "careful", "42"]
        assert logger.messages("RESULT") == ["42"]

    def test_table_renders_every_row(self):
        logger = RunLogger(name="t")
        logger.table(["a", "bb"], [[1, 2], [3, 4]])
        results = logger.messages("RESULT")
        assert len(results) == 3
        assert "bb" in results[0]

    def test_echo_writes_to_stream(self):
        import io

        stream = io.StringIO()
        logger = RunLogger(name="t", echo=True, stream=stream)
        logger.info("visible")
        assert "visible" in stream.getvalue()
