"""Deterministic random-number management.

Every stochastic component in the repository (synthetic datasets, Poisson
spike encoders, device variation models, weight initialisation) takes an
explicit :class:`numpy.random.Generator`.  These helpers create generators
from integer seeds and derive statistically independent child generators from
a parent, so an experiment seeded once is reproducible end to end while its
sub-components do not share streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["seeded_rng", "derive_rng", "stable_seed"]


def seeded_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` produces a non-deterministic generator; experiments should always
    pass an integer.
    """
    return np.random.default_rng(seed)


def stable_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from arbitrary labelled parts.

    The derivation hashes the ``repr`` of each part, so the same labels always
    yield the same seed across processes and Python versions (unlike
    ``hash()``, which is salted).
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def derive_rng(parent_seed: int, *labels: object) -> np.random.Generator:
    """Create a child generator that is independent for each label tuple.

    Parameters
    ----------
    parent_seed:
        The experiment-level seed.
    labels:
        Any hashable labels identifying the consumer (for example
        ``("dataset", "mnist", split)``).
    """
    return np.random.default_rng(stable_seed(parent_seed, *labels))
