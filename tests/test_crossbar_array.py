"""Tests for the crossbar array, weight mapping, energy and non-idealities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crossbar import (
    CrossbarArray,
    CrossbarConfig,
    CrossbarEnergyModel,
    CrossbarMapper,
    CrossbarNonidealities,
    DeviceParameters,
    MemristorModel,
    NonidealityParameters,
)


class TestCrossbarMapper:
    def test_differential_mapping_recovers_signed_weights(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(0, 0.4, size=(16, 8))
        mapper = CrossbarMapper(MemristorModel(DeviceParameters(levels=256)))
        programmed = mapper.program(weights)
        recovered = programmed.effective_weights(mapper.model)
        np.testing.assert_allclose(recovered, weights, atol=np.max(np.abs(weights)) / 128)

    def test_column_currents_match_matrix_product(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(0, 0.3, size=(12, 6))
        mapper = CrossbarMapper(MemristorModel(DeviceParameters(levels=256)))
        programmed = mapper.program(weights)
        spikes = (rng.random(12) < 0.5).astype(float)
        currents = mapper.column_currents(programmed, spikes)
        weighted = mapper.currents_to_weighted_sum(programmed, currents)
        np.testing.assert_allclose(
            weighted, spikes @ programmed.effective_weights(mapper.model), atol=1e-9
        )

    def test_batched_inputs(self):
        weights = np.eye(4)
        mapper = CrossbarMapper()
        programmed = mapper.program(weights)
        batch = np.eye(4)
        currents = mapper.column_currents(programmed, batch)
        assert currents.shape == (4, 4)

    def test_rejects_wrong_input_length(self):
        mapper = CrossbarMapper()
        programmed = mapper.program(np.ones((4, 4)))
        with pytest.raises(ValueError):
            mapper.column_currents(programmed, np.ones(5))

    def test_rejects_non_2d_weights(self):
        with pytest.raises(ValueError):
            CrossbarMapper().program(np.ones(5))

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            CrossbarMapper().program(np.ones((2, 2)), scale=0.0)


class TestCrossbarArray:
    def test_program_and_evaluate_identity(self):
        config = CrossbarConfig(rows=8, columns=8, device=DeviceParameters(levels=256))
        xbar = CrossbarArray(config)
        xbar.program(np.eye(8))
        out = xbar.evaluate(np.ones(8))
        np.testing.assert_allclose(out.weighted_sums, np.ones(8), atol=0.02)

    def test_smaller_block_is_padded(self):
        xbar = CrossbarArray(CrossbarConfig(rows=16, columns=16))
        xbar.program(np.ones((4, 4)))
        assert xbar.used_rows == 4
        assert xbar.used_columns == 4
        assert xbar.utilisation == pytest.approx(16 / 256)

    def test_oversized_block_rejected(self):
        xbar = CrossbarArray(CrossbarConfig(rows=4, columns=4))
        with pytest.raises(ValueError):
            xbar.program(np.ones((5, 4)))

    def test_evaluate_before_program_raises(self):
        xbar = CrossbarArray(CrossbarConfig(rows=4, columns=4))
        with pytest.raises(RuntimeError):
            xbar.evaluate(np.ones(4))

    def test_wrong_spike_length_rejected(self):
        xbar = CrossbarArray(CrossbarConfig(rows=4, columns=4))
        xbar.program(np.ones((4, 4)))
        with pytest.raises(ValueError):
            xbar.evaluate(np.ones(3))

    def test_energy_counters_accumulate(self):
        xbar = CrossbarArray(CrossbarConfig(rows=8, columns=8))
        xbar.program(np.ones((8, 8)))
        xbar.evaluate(np.ones(8))
        xbar.evaluate(np.zeros(8))
        assert xbar.total_reads == 2
        assert xbar.total_energy_j > 0
        xbar.reset_counters()
        assert xbar.total_reads == 0
        assert xbar.total_energy_j == 0.0

    def test_quantisation_visible_at_low_precision(self):
        config = CrossbarConfig(rows=4, columns=4, device=DeviceParameters(levels=2))
        xbar = CrossbarArray(config)
        xbar.program(np.array([[0.1, 0.9], [0.5, 0.4]]))
        effective = xbar.effective_weights()[:2, :2]
        # With one bit per weight only full-scale or zero magnitudes survive.
        assert set(np.round(np.unique(np.abs(effective)) / 0.9, 2)).issubset({0.0, 1.0})

    def test_config_with_size(self):
        config = CrossbarConfig().with_size(128)
        assert config.rows == 128 and config.columns == 128
        with pytest.raises(ValueError):
            CrossbarConfig(rows=0, columns=8)

    @given(st.integers(min_value=2, max_value=24), st.integers(min_value=2, max_value=24))
    @settings(max_examples=10, deadline=None)
    def test_evaluation_matches_effective_weights(self, rows, cols):
        rng = np.random.default_rng(rows * 31 + cols)
        config = CrossbarConfig(rows=rows, columns=cols)
        xbar = CrossbarArray(config)
        weights = rng.normal(0, 0.5, size=(rows, cols))
        xbar.program(weights)
        spikes = (rng.random(rows) < 0.4).astype(float)
        out = xbar.evaluate(spikes)
        np.testing.assert_allclose(
            out.weighted_sums, spikes @ xbar.effective_weights(), atol=1e-9
        )


class TestCrossbarEnergy:
    def test_read_cost_scales_with_active_rows(self):
        model = CrossbarEnergyModel()
        low = model.read_cost(64, 64, active_rows=8)
        high = model.read_cost(64, 64, active_rows=64)
        assert high.energy_j > low.energy_j

    def test_unused_crosspoints_cost_more_on_larger_arrays(self):
        # Same mapped synapses (25x64), growing physical array: the half-select
        # leakage of unused cross-points makes the larger array more expensive.
        model = CrossbarEnergyModel()
        small = model.read_cost(64, 64, active_rows=4, utilisation=25 * 64 / (64 * 64))
        large = model.read_cost(128, 128, active_rows=4, utilisation=25 * 64 / (128 * 128))
        assert large.energy_j > small.energy_j

    def test_zero_active_rows_still_charges_sense(self):
        model = CrossbarEnergyModel()
        cost = model.read_cost(32, 32, active_rows=0)
        assert cost.energy_j > 0
        assert cost.active_rows == 0

    def test_invalid_utilisation_rejected(self):
        with pytest.raises(ValueError):
            CrossbarEnergyModel().read_cost(8, 8, utilisation=1.5)
        with pytest.raises(ValueError):
            CrossbarEnergyModel().read_cost(0, 8)

    def test_mean_conductance_interpolates(self):
        model = CrossbarEnergyModel()
        empty = model.mean_device_conductance_s(0.0)
        full = model.mean_device_conductance_s(1.0)
        half = model.mean_device_conductance_s(0.5)
        assert empty == pytest.approx(model.device.g_off_s)
        assert empty < half < full

    def test_idle_leakage_small(self):
        assert CrossbarEnergyModel().idle_leakage_w(64, 64) < 1e-6


class TestNonidealities:
    def test_ideal_flag(self):
        assert NonidealityParameters().ideal
        assert not NonidealityParameters(read_noise_sigma=0.1).ideal

    def test_ir_drop_attenuation_decreases_with_size(self):
        model = CrossbarNonidealities(NonidealityParameters(wire_resistance_ohm=2.0))
        small = model.ir_drop_attenuation(32, 32, 2e-5)
        large = model.ir_drop_attenuation(256, 256, 2e-5)
        assert 0 < large < small <= 1.0

    def test_no_wire_resistance_means_no_attenuation(self):
        model = CrossbarNonidealities(NonidealityParameters())
        assert model.ir_drop_attenuation(128, 128, 2e-5) == 1.0

    def test_relative_error_grows_with_size(self):
        model = CrossbarNonidealities(
            NonidealityParameters(wire_resistance_ohm=2.0, sneak_leakage_fraction=0.01)
        )
        assert model.relative_output_error(128, 128, 2e-5) > model.relative_output_error(
            32, 32, 2e-5
        )

    def test_read_noise_changes_currents(self):
        rng = np.random.default_rng(0)
        model = CrossbarNonidealities(NonidealityParameters(read_noise_sigma=0.05))
        currents = np.ones(16) * 1e-6
        noisy = model.apply_read_noise(currents, rng)
        assert not np.allclose(noisy, currents)

    def test_variation_requires_positive_sigma(self):
        rng = np.random.default_rng(0)
        model = CrossbarNonidealities(NonidealityParameters())
        g = np.ones((4, 4)) * 1e-5
        np.testing.assert_allclose(model.apply_variation(g, rng), g)

    def test_noisy_crossbar_still_close_to_ideal(self):
        rng = np.random.default_rng(2)
        config = CrossbarConfig(
            rows=16,
            columns=16,
            device=DeviceParameters(levels=256),
            nonidealities=NonidealityParameters(read_noise_sigma=0.02),
        )
        xbar = CrossbarArray(config, rng=rng)
        weights = rng.normal(0, 0.4, size=(16, 16))
        xbar.program(weights)
        spikes = np.ones(16)
        out = xbar.evaluate(spikes)
        ideal = spikes @ xbar.effective_weights()
        correlation = np.corrcoef(out.weighted_sums, ideal)[0, 1]
        assert correlation > 0.98
