"""Serializable request/response schema of the serving API.

A server, queue worker or sweep harness needs results that can cross a
process boundary.  :class:`InferenceRequest` and :class:`InferenceResponse`
are the wire-level counterparts of the in-memory simulation types: plain
dataclasses whose :meth:`to_dict` / :meth:`from_dict` round-trip losslessly
through JSON (Python's ``json`` serialises floats with shortest round-trip
precision), carrying :class:`~repro.core.stats.EventCounters` and
:class:`~repro.energy.model.EnergyReport` via their own dict codecs.

The schema is versioned (``SCHEMA_VERSION``) so a deserialiser can reject
payloads written by an incompatible producer instead of mis-reading them.

This module also defines the newline-delimited JSON *wire envelope* the chip
server and its clients exchange (one JSON object per line in each
direction).  Protocol version 2 adds explicit ``op``/``reply`` framing and
optional request ``id``\\ s so several requests can be in flight on one
connection; version-1 peers (no ``v``, no ``id``) remain fully supported —
the server answers them in arrival order, exactly as before.

The version-2 envelope additionally carries the admission-control surface
(all optional, so v1/v2 peers that ignore it are unchanged):

* an ``infer`` request may set ``deadline_s`` (positive seconds); the server
  rejects the request once that much time has passed before dispatch;
* a ``cancel`` request (``{"op": "cancel", "target": <id>}``) removes the
  still-queued ``infer`` tagged ``target`` on the same connection;
* error replies may carry a machine-readable ``code`` —
  :data:`ERROR_OVERLOADED`, :data:`ERROR_DEADLINE_EXCEEDED` or
  :data:`ERROR_CANCELLED` — next to the human-readable ``error`` message, so
  clients and the gateway can react (retry elsewhere, surface a timeout)
  without parsing prose.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.stats import EventCounters
from repro.energy.model import EnergyReport

__all__ = [
    "ERROR_CANCELLED",
    "ERROR_DEADLINE_EXCEEDED",
    "ERROR_OVERLOADED",
    "PROTOCOL_VERSION",
    "SCHEMA_VERSION",
    "InferenceRequest",
    "InferenceResponse",
    "error_envelope",
    "parse_envelope",
    "reply_envelope",
    "request_envelope",
]

#: Version tag embedded in every serialised response.
SCHEMA_VERSION = 1

#: Wire-envelope version: 2 adds request ids and ``op``/``reply`` framing.
#: Version-1 envelopes (no ``v`` field) are still accepted everywhere.
PROTOCOL_VERSION = 2

#: Structured error codes carried in error replies (the ``code`` field).
#: The request was shed by the server's admission control (queue full).
ERROR_OVERLOADED = "overloaded"
#: The request's ``deadline_s`` expired before the server dispatched it.
ERROR_DEADLINE_EXCEEDED = "deadline_exceeded"
#: The request was cancelled (a ``cancel`` op, or the client went away).
ERROR_CANCELLED = "cancelled"


# -- wire envelope ------------------------------------------------------------------


def request_envelope(
    op: str, *, request_id: object = None, **fields: object
) -> dict[str, object]:
    """Build one request line of the wire protocol.

    ``request_id`` (any JSON scalar) tags the request so its reply can be
    matched out of order; omitting it produces a version-1 style envelope
    whose reply arrives in order on the connection.
    """
    envelope: dict[str, object] = {"v": PROTOCOL_VERSION, "op": op}
    if request_id is not None:
        envelope["id"] = request_id
    envelope.update(fields)
    return envelope


def reply_envelope(
    op: object, result: dict[str, object], *, request_id: object = None
) -> dict[str, object]:
    """Build a success reply, echoing the request's ``op`` and ``id``."""
    envelope: dict[str, object] = {"ok": True, "v": PROTOCOL_VERSION, "reply": op}
    if request_id is not None:
        envelope["id"] = request_id
    envelope.update(result)
    return envelope


def error_envelope(
    message: str,
    *,
    op: object = None,
    request_id: object = None,
    code: str | None = None,
) -> dict[str, object]:
    """Build an error reply (every failure becomes a reply, never a dropped line).

    ``code`` attaches a machine-readable error code (:data:`ERROR_OVERLOADED`,
    :data:`ERROR_DEADLINE_EXCEEDED`, :data:`ERROR_CANCELLED`) so clients can
    branch on the failure class without parsing the message text.
    """
    envelope: dict[str, object] = {
        "ok": False,
        "v": PROTOCOL_VERSION,
        "reply": op,
        "error": message,
    }
    if code is not None:
        envelope["code"] = code
    if request_id is not None:
        envelope["id"] = request_id
    return envelope


def parse_envelope(line: str) -> dict[str, object]:
    """Parse one wire line into an envelope mapping.

    Raises :class:`ValueError` on malformed JSON, non-object lines and
    envelope versions newer than this build understands, so the server can
    turn every protocol violation into an error reply.
    """
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed request line: {exc}") from None
    if not isinstance(message, dict):
        raise ValueError("request line must be a JSON object")
    version = message.get("v", 1)
    if not isinstance(version, int) or not 1 <= version <= PROTOCOL_VERSION:
        raise ValueError(
            f"unsupported protocol version {version!r} "
            f"(this build speaks 1..{PROTOCOL_VERSION})"
        )
    return message


def _as_batch(inputs: np.ndarray) -> np.ndarray:
    """Coerce request inputs to a flattened ``(batch, features)`` float array.

    Degenerate inputs are rejected here (the reshape below cannot infer a
    feature axis for them anyway): a request must carry at least one sample
    and each sample at least one feature.
    """
    x = np.asarray(inputs, dtype=float)
    if x.ndim == 1:
        # An empty 1-D input is an empty batch, not a single empty sample.
        x = x.reshape(0, 0) if x.size == 0 else x[np.newaxis]
    if x.shape[0] == 0:
        raise ValueError(
            "request batch is empty: inputs must contain at least one sample"
        )
    if x.size == 0:
        raise ValueError(
            "request samples are empty: each sample needs at least one feature"
        )
    return x.reshape(x.shape[0], -1)


def _load_payload(payload: str, what: str) -> dict[str, object]:
    """Parse a JSON payload into a mapping, raising :class:`ValueError` on junk.

    Wire-facing consumers (the chip server, queue workers) must be able to
    treat every deserialisation failure uniformly, so malformed JSON and
    non-object payloads surface as ``ValueError`` like every other schema
    violation rather than leaking :class:`json.JSONDecodeError`.
    """
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed {what} JSON payload: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError(
            f"{what} payload must be a JSON object, got {type(data).__name__}"
        )
    return data


def _check_fields(
    data: dict[str, object], *, what: str, required: set[str], optional: set[str]
) -> None:
    """Reject payloads with missing required or unknown fields (schema drift)."""
    missing = required - set(data)
    if missing:
        raise ValueError(f"{what} payload missing required fields: {sorted(missing)}")
    unknown = set(data) - required - optional
    if unknown:
        raise ValueError(f"{what} payload has unknown fields: {sorted(unknown)}")


@dataclass(frozen=True)
class InferenceRequest:
    """One batch of inputs for a :class:`~repro.serve.ChipSession`.

    Attributes
    ----------
    inputs:
        Intensity array of shape ``(batch, ...)`` (a single 1-D sample is
        promoted to a batch of one); trailing axes are flattened.
    labels:
        Optional integer labels; when present the response carries accuracy.
    timesteps:
        Per-request override of the session's rate-coding window.
    sample_offset:
        Absolute index of ``inputs[0]`` within the logical batch.  Used by
        :class:`~repro.serve.ChipPool` so a shard's stochastic encoding is
        identical to the same slice of a single full-batch request.
    """

    inputs: np.ndarray
    labels: np.ndarray | None = None
    timesteps: int | None = None
    sample_offset: int = 0

    def __post_init__(self) -> None:
        if self.timesteps is not None and self.timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {self.timesteps}")
        if self.sample_offset < 0:
            raise ValueError(f"sample_offset must be >= 0, got {self.sample_offset}")
        batch = self.batch  # raises on empty batches / featureless samples
        if self.labels is not None and len(np.asarray(self.labels)) != batch.shape[0]:
            raise ValueError(
                f"labels length {len(np.asarray(self.labels))} does not match "
                f"batch size {batch.shape[0]}"
            )

    @property
    def batch(self) -> np.ndarray:
        """The inputs as a flattened ``(batch, features)`` array."""
        return _as_batch(self.inputs)

    @property
    def batch_size(self) -> int:
        """Number of samples in the request."""
        return self.batch.shape[0]

    def shard(self, start: int, stop: int) -> "InferenceRequest":
        """The sub-request covering samples ``[start, stop)`` of this batch."""
        x = self.batch
        labels = None
        if self.labels is not None:
            labels = np.asarray(self.labels)[start:stop]
        return replace(
            self,
            inputs=x[start:stop],
            labels=labels,
            sample_offset=self.sample_offset + start,
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible representation."""
        return {
            "schema_version": SCHEMA_VERSION,
            "inputs": self.batch.tolist(),
            "labels": None if self.labels is None else np.asarray(self.labels).tolist(),
            "timesteps": self.timesteps,
            "sample_offset": self.sample_offset,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "InferenceRequest":
        """Rebuild a request produced by :meth:`to_dict`.

        Payloads missing ``inputs`` or carrying fields this build does not
        know are rejected with a :class:`ValueError`, so a drifted producer
        fails loudly instead of being silently mis-read.
        """
        _check_version(data)
        _check_fields(
            data,
            what="request",
            required={"inputs"},
            optional={"schema_version", "labels", "timesteps", "sample_offset"},
        )
        labels = data.get("labels")
        timesteps = data.get("timesteps")
        return cls(
            inputs=np.asarray(data["inputs"], dtype=float),
            labels=None if labels is None else np.asarray(labels, dtype=int),
            timesteps=None if timesteps is None else int(timesteps),
            sample_offset=int(data.get("sample_offset", 0)),
        )

    def to_json(self) -> str:
        """Serialise to a JSON string (the chip server's wire format)."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "InferenceRequest":
        """Deserialise from a JSON string; malformed JSON is a ValueError."""
        return cls.from_dict(_load_payload(payload, "request"))


@dataclass(frozen=True)
class InferenceResponse:
    """Outcome of one served inference batch.

    Mirrors :class:`~repro.core.simulator.ChipRunResult` (predictions, spike
    counts, accuracy, counters, energy) plus the serving metadata a client
    needs: the executing backend, the batch size and how many pool workers
    the batch was sharded across.
    """

    predictions: np.ndarray
    spike_counts: np.ndarray
    accuracy: float | None
    counters: EventCounters
    energy: EnergyReport
    timesteps: int
    backend: str
    batch_size: int
    jobs: int = 1
    metadata: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible representation (lossless float round trip)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "predictions": self.predictions.tolist(),
            "spike_counts": self.spike_counts.tolist(),
            "accuracy": self.accuracy,
            "counters": self.counters.as_dict(),
            "energy": self.energy.to_dict(),
            "timesteps": self.timesteps,
            "backend": self.backend,
            "batch_size": self.batch_size,
            "jobs": self.jobs,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "InferenceResponse":
        """Rebuild a response produced by :meth:`to_dict`.

        Like :meth:`InferenceRequest.from_dict`, missing required fields and
        unknown fields raise :class:`ValueError`.
        """
        _check_version(data)
        _check_fields(
            data,
            what="response",
            required={
                "predictions",
                "spike_counts",
                "counters",
                "energy",
                "timesteps",
                "backend",
                "batch_size",
            },
            optional={"schema_version", "accuracy", "jobs", "metadata"},
        )
        accuracy = data.get("accuracy")
        return cls(
            predictions=np.asarray(data["predictions"], dtype=int),
            spike_counts=np.asarray(data["spike_counts"], dtype=float),
            accuracy=None if accuracy is None else float(accuracy),
            counters=EventCounters.from_dict(data["counters"]),
            energy=EnergyReport.from_dict(data["energy"]),
            timesteps=int(data["timesteps"]),
            backend=str(data["backend"]),
            batch_size=int(data["batch_size"]),
            jobs=int(data.get("jobs", 1)),
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "InferenceResponse":
        """Deserialise from a JSON string; malformed JSON is a ValueError."""
        return cls.from_dict(_load_payload(payload, "response"))

    def as_run_result(self):
        """Convert to the legacy :class:`~repro.core.simulator.ChipRunResult`."""
        from repro.core.simulator import ChipRunResult

        return ChipRunResult(
            predictions=self.predictions,
            spike_counts=self.spike_counts,
            accuracy=self.accuracy,
            counters=self.counters,
            energy=self.energy,
            timesteps=self.timesteps,
            backend=self.backend,
        )


def _check_version(data: dict[str, object]) -> None:
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {version!r} (this build reads {SCHEMA_VERSION})"
        )
