"""The load lab: rank statistics against hand values, seeded determinism,
and a tiny end-to-end sweep with schema-checked persistence.

The statistics module backs cross-topology claims in the persisted perf
trajectory, so it is pinned against closed forms (``chi2_sf`` with 2 and 4
degrees of freedom has exact exponential forms) and hand-worked examples
rather than against itself.  The generator's whole point is reproducible
load, so two runs from one seed must issue byte-identical request streams.
The sweep test drives a real (tiny) topology matrix end to end and checks
the persisted document against the versioned schema.
"""

from __future__ import annotations

import json
import math
import threading

import numpy as np
import pytest

from repro.loadlab import (
    SCHEMA_VERSION,
    LoadSpec,
    default_workload,
    load_results,
    persist_result,
    persist_sweep,
    run_load,
    run_sweep,
)
from repro.loadlab.stats import (
    chi2_sf,
    holm_bonferroni,
    kruskal_wallis,
    mann_whitney_u,
    normal_sf,
    rankdata,
    spearman,
)


class TestRankStats:
    def test_rankdata_handles_ties(self):
        assert rankdata([1.0, 2.0, 2.0, 3.0]).tolist() == [1.0, 2.5, 2.5, 4.0]
        assert rankdata([5.0, 1.0, 3.0]).tolist() == [3.0, 1.0, 2.0]
        assert rankdata([7.0, 7.0, 7.0]).tolist() == [2.0, 2.0, 2.0]

    def test_normal_sf_known_points(self):
        assert normal_sf(0.0) == pytest.approx(0.5)
        assert normal_sf(1.959963985) == pytest.approx(0.025, abs=1e-6)

    def test_chi2_sf_matches_closed_forms(self):
        # df=2: sf(x) = exp(-x/2); df=4: sf(x) = exp(-x/2) * (1 + x/2).
        for x in (0.5, 1.0, 3.7, 10.0):
            assert chi2_sf(x, 2) == pytest.approx(math.exp(-x / 2), rel=1e-9)
            assert chi2_sf(x, 4) == pytest.approx(
                math.exp(-x / 2) * (1 + x / 2), rel=1e-9
            )

    def test_mann_whitney_separated_samples(self):
        low = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        high = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
        result = mann_whitney_u(high, low)
        assert result["u"] == 36.0  # every high beats every low
        assert result["effect"] == 1.0
        assert result["p"] < 0.01
        # Symmetric call flips the effect, keeps the p-value.
        flipped = mann_whitney_u(low, high)
        assert flipped["effect"] == 0.0
        assert flipped["p"] == pytest.approx(result["p"])

    def test_mann_whitney_identical_samples(self):
        result = mann_whitney_u([2.0, 2.0, 2.0], [2.0, 2.0, 2.0])
        assert result["p"] == 1.0
        assert result["effect"] == 0.5

    def test_kruskal_wallis_hand_example(self):
        groups = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]
        result = kruskal_wallis(groups)
        # No ties, fully separated ranks: H = 12/(9*10) * (6^2+15^2+24^2)/3 - 3*10.
        expected_h = 12.0 / 90.0 * (36 + 225 + 576) / 3.0 - 30.0
        assert result["h"] == pytest.approx(expected_h, rel=1e-12)
        assert result["df"] == 2.0
        assert result["p"] == pytest.approx(chi2_sf(expected_h, 2), rel=1e-12)

    def test_holm_correction_hand_example(self):
        # Sorted p: 0.01, 0.03, 0.04 -> multipliers 3, 2, 1 with running max.
        assert holm_bonferroni([0.01, 0.04, 0.03]) == pytest.approx(
            [0.03, 0.06, 0.06]
        )
        assert holm_bonferroni([]) == []

    def test_spearman_monotone_and_antitone(self):
        x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        up = spearman(x, [10.0, 20.0, 30.0, 40.0, 50.0, 60.0])
        assert up["rho"] == pytest.approx(1.0)
        down = spearman(x, [60.0, 50.0, 40.0, 30.0, 20.0, 10.0])
        assert down["rho"] == pytest.approx(-1.0)
        assert 0.0 <= up["p"] <= 1.0

    def test_spearman_constant_input(self):
        result = spearman([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])
        assert result["rho"] == 0.0
        assert result["p"] == 1.0


class _RecordingTarget:
    """Stub submit() that records every request's inputs."""

    def __init__(self):
        self.lock = threading.Lock()
        self.seen: list[tuple[int, bytes]] = []

    def submit(self, request):
        with self.lock:
            self.seen.append((len(self.seen), request.inputs.tobytes()))

        class _Response:
            metadata = {}
            energy = None
            batch_size = request.inputs.shape[0]

        return _Response()


class TestGeneratorDeterminism:
    def _drive(self, spec: LoadSpec) -> list[bytes]:
        workload = default_workload(samples=16, timesteps=2)
        target = _RecordingTarget()

        def make_request(index, rng):
            return workload.make_request(index, rng, spec.batch_size)

        outcomes, wall = run_load(target.submit, make_request, spec)
        assert len(outcomes) == spec.requests
        assert wall > 0.0
        assert all(o.ok for o in outcomes)
        return sorted(payload for _, payload in target.seen)

    def test_closed_loop_streams_identical_across_runs(self):
        spec = LoadSpec(mode="closed", concurrency=2, requests=6, warmup=1, seed=11)
        assert self._drive(spec) == self._drive(spec)

    def test_open_loop_streams_identical_across_runs(self):
        spec = LoadSpec(
            mode="open", rate=200.0, requests=6, warmup=1, seed=11
        )
        assert self._drive(spec) == self._drive(spec)

    def test_different_seeds_differ(self):
        base = LoadSpec(mode="closed", concurrency=1, requests=6, seed=1)
        other = LoadSpec(mode="closed", concurrency=1, requests=6, seed=2)
        assert self._drive(base) != self._drive(other)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(mode="open", rate=None)
        with pytest.raises(ValueError):
            LoadSpec(mode="sideways")
        with pytest.raises(ValueError):
            LoadSpec(requests=0)


class TestSweepEndToEnd:
    def test_tiny_sweep_persists_versioned_schema(self, tmp_path):
        workload = default_workload(samples=16, timesteps=2)
        loads = [
            LoadSpec(mode="closed", concurrency=1, requests=4, warmup=1, batch_size=2),
            LoadSpec(mode="closed", concurrency=2, requests=4, warmup=1, batch_size=2),
        ]
        result = run_sweep(["session", "pool"], loads, workload=workload)
        assert len(result["cells"]) == 4
        for cell in result["cells"]:
            assert cell["served"] == 4
            assert cell["shed"] == 0
            assert cell["throughput_rps"] > 0
            assert cell["latency_s"]["p50"] <= cell["latency_s"]["p95"]
            assert cell["energy_j_per_request"] > 0
        # Two topologies per load row -> one omnibus + one pairwise contrast.
        assert len(result["contrasts"]) == 2
        for block in result["contrasts"]:
            assert 0.0 <= block["kruskal_wallis"]["p"] <= 1.0
            assert len(block["pairwise"]) == 1
            assert 0.0 <= block["pairwise"][0]["p_holm"] <= 1.0

        path = tmp_path / "loadlab.json"
        persist_sweep(result, path)
        persist_sweep(result, path)  # trajectory appends, never clobbers
        document = json.loads(path.read_text())
        assert document["schema_version"] == SCHEMA_VERSION
        assert len(document["runs"]) == 2
        assert document["runs"][0]["kind"] == "sweep"
        assert document["runs"][0]["cells"] == result["cells"]

    def test_persist_result_sections_merge(self, tmp_path):
        path = tmp_path / "doc.json"
        persist_result(path, "alpha", {"x": 1})
        persist_result(path, "beta", {"y": 2})
        document = load_results(path)
        assert document["alpha"] == {"x": 1}
        assert document["beta"] == {"y": 2}
        assert document["schema_version"] == SCHEMA_VERSION
        # Corrupt files are replaced, not fatal.
        path.write_text("{not json")
        persist_result(path, "gamma", [3])
        assert load_results(path)["gamma"] == [3]
