"""Asyncio chip server: pipelined newline-delimited JSON inference over TCP.

:class:`ChipServer` wraps any inference target that answers
``infer(InferenceRequest) -> InferenceResponse`` — a
:class:`~repro.serve.ChipSession`, a :class:`~repro.serve.ChipPool`, even a
gateway — behind a tiny line-oriented protocol that stdlib clients can speak:

* client sends one JSON object per line: ``{"op": "infer", "request":
  {...}}``, ``{"op": "info"}``, ``{"op": "ping"}`` or ``{"op": "shutdown"}``,
  optionally tagged with a protocol version ``"v"`` and a request ``"id"``;
* server answers one JSON object per line: ``{"ok": true, ...}`` on success
  or ``{"ok": false, "error": "..."}`` on failure — malformed JSON, schema
  violations and inference errors all surface as error replies rather than
  dropped connections.  Replies echo the request's ``id``.

The server core is an :mod:`asyncio` event loop, so a connection is no
longer a lock-step request/reply channel: a client may keep several tagged
requests in flight and match the replies by ``id`` (version-1 clients that
send untagged requests get their replies in arrival order, exactly as
before).  Every ``infer`` lands on a single server-wide queue; a dispatcher
coroutine drains the queue and **dynamically batches** compatible requests —
same ``timesteps`` override — from any number of clients into one
``target.infer_many`` pool dispatch.  Responses are split back per request
by the pool, exactly (shard-stable encoding means coalescing changes
throughput, never numbers).  Chip work runs on a one-thread executor so the
event loop stays responsive while the chips crunch.

The payloads are exactly the serve-schema dicts, so a response read off the
wire is lossless (`InferenceResponse.from_dict`), and the numbers a remote
client sees are bit-identical to a local run.

:func:`load_benchmark_workload` builds a servable SNN from the benchmark
registry (network → synthetic dataset → ANN→SNN conversion), which is what
``python -m repro.serve.distributed serve --workload mnist-mlp`` uses.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.datasets import make_dataset
from repro.serve.schema import (
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    InferenceRequest,
    error_envelope,
    parse_envelope,
    reply_envelope,
)
from repro.snn.conversion import SpikingNetwork, convert_to_snn
from repro.workloads import get_benchmark

__all__ = ["ChipServer", "ServingWorkload", "load_benchmark_workload"]

#: Longest accepted wire line.  A request line carries the whole input batch
#: as JSON floats (~20 bytes per value), so the stdlib's 64 KiB stream
#: default would cap batches at a few thousand values; 64 MiB comfortably
#: fits production-sized batches while still bounding a misbehaving client.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Lines longer than this are parsed off the event loop: decoding megabytes
#: of JSON inline would stall every other connection for the duration.
_OFFLOAD_PARSE_BYTES = 64 * 1024


def _encode_reply_line(reply: dict[str, object]) -> bytes:
    """Serialise one reply envelope to its wire line (runs off-loop)."""
    return json.dumps(reply).encode("utf-8") + b"\n"


@dataclass
class ServingWorkload:
    """A benchmark prepared for serving: the SNN plus its evaluation split."""

    name: str
    snn: SpikingNetwork
    test_inputs: np.ndarray
    test_labels: np.ndarray


def load_benchmark_workload(
    benchmark: str,
    *,
    scale: float = 1.0,
    seed: int = 7,
    train_samples: int = 64,
    test_samples: int = 32,
) -> ServingWorkload:
    """Build a servable SNN for a registered MLP benchmark.

    Deterministic in ``(benchmark, scale, seed, train_samples)``: a server
    and a client that load the same workload with the same arguments hold
    the same network, which is what makes remote results comparable to local
    ones.
    """
    spec = get_benchmark(benchmark)
    if not spec.is_mlp:
        raise ValueError(
            f"{benchmark!r} is not an MLP; the chip server executes fully "
            f"connected networks only (choose from the *-mlp benchmarks)"
        )
    network = spec.build(scale=scale, seed=seed)
    dataset = make_dataset(
        spec.dataset, train_samples=train_samples, test_samples=test_samples, seed=seed
    )
    train_inputs = dataset.train_images.reshape(dataset.train_images.shape[0], -1)
    test_inputs = dataset.test_images.reshape(dataset.test_images.shape[0], -1)
    snn = convert_to_snn(network, train_inputs[: min(32, len(train_inputs))])
    return ServingWorkload(
        name=benchmark,
        snn=snn,
        test_inputs=test_inputs,
        test_labels=dataset.test_labels,
    )


@dataclass
class _QueuedInfer:
    """One infer request waiting in the server's dynamic-batching queue."""

    key: object  # compatibility key: requests sharing it may coalesce
    request: InferenceRequest
    future: asyncio.Future


class ChipServer:
    """Serve an inference target on a TCP port (asyncio core).

    Parameters
    ----------
    target:
        Anything with ``infer(InferenceRequest) -> InferenceResponse``.
        Targets that additionally provide ``infer_many(list) -> list`` (a
        :class:`~repro.serve.ChipPool`) get cross-client dynamic batching:
        queued compatible requests coalesce into one pool dispatch.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`address`).  The socket is bound eagerly in the constructor,
        so :attr:`address` is valid before serving starts.
    workload:
        Human-readable workload name reported by the ``info`` op.
    max_batch:
        Most requests one dynamic batch may coalesce (>= 1).
    batch_window_s:
        Extra seconds the dispatcher lingers for more compatible requests
        once the queue runs dry before dispatching a non-full batch.  The
        default 0 only coalesces what is already queued — batching under
        concurrency, zero added latency when idle.

    Use :meth:`serve_forever` to block, or :meth:`start` to serve on a
    background thread; :meth:`close` (or the context manager) tears down
    either way.
    """

    def __init__(
        self,
        target,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workload: str = "custom",
        max_batch: int = 8,
        batch_window_s: float = 0.0,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window_s < 0:
            raise ValueError(f"batch_window_s must be >= 0, got {batch_window_s}")
        self.target = target
        self.workload = workload
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        # Bind eagerly so `address` works immediately and `start()` has no
        # listening race; asyncio adopts this socket in _serve_async.
        self._sock = socket.create_server((host, port), reuse_port=False)
        bound = self._sock.getsockname()[:2]
        self._address = (str(bound[0]), int(bound[1]))
        #: Dynamic-batching counters: total requests served, dispatches made
        #: and the largest coalesced dispatch (only the dispatcher coroutine
        #: writes these).
        self.stats: dict[str, int] = {"requests": 0, "batches": 0, "max_coalesced": 0}
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._queue: asyncio.Queue[_QueuedInfer] | None = None
        # Chip work runs on exactly one worker thread, which is the
        # serialisation point: bare targets (a structural ChipSession
        # mutates live chip state per run) are not thread-safe, and a busy
        # worker is what lets queued requests pile up and coalesce.
        self._work = ThreadPoolExecutor(max_workers=1, thread_name_prefix="chip-work")
        self._serving = False
        self._closed = False

    # -- introspection ------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (cached at bind time)."""
        return self._address

    @property
    def endpoint(self) -> str:
        """The bound address as a ``host:port`` string."""
        host, port = self.address
        return f"{host}:{port}"

    def info(self) -> dict[str, object]:
        """Metadata reported to clients (duck-typed off the target)."""
        session = getattr(self.target, "session", self.target)
        jobs = int(getattr(self.target, "jobs", 1))
        info: dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "protocol_version": PROTOCOL_VERSION,
            "workload": self.workload,
            "backend": getattr(session, "backend", "unknown"),
            "timesteps": int(getattr(session, "timesteps", 0)),
            "jobs": jobs,
            # Capacity drives gateway sharding weights; a pool's capacity is
            # its worker count.
            "capacity": jobs,
            "max_batch": self.max_batch,
            "stats": dict(self.stats),
        }
        executor = getattr(self.target, "executor", None)
        if executor is not None:
            info["executor"] = executor
        return info

    # -- protocol -----------------------------------------------------------------

    async def _execute(self, message: dict[str, object]) -> dict[str, object]:
        """Turn one parsed envelope into a reply envelope (never raises)."""
        op = message.get("op")
        request_id = message.get("id")
        try:
            if op == "ping":
                result: dict[str, object] = {"pong": True}
            elif op == "info":
                result = {"info": self.info()}
            elif op == "infer":
                payload = message.get("request")
                if not isinstance(payload, dict):
                    raise ValueError('infer needs a "request" object payload')
                assert self._loop is not None and self._queue is not None
                # Schema decode/encode of a large batch is real CPU work;
                # run it off-loop so other connections stay responsive.
                request = await self._loop.run_in_executor(
                    None, InferenceRequest.from_dict, payload
                )
                future = self._loop.create_future()
                # Compatibility key: only requests sharing the encoding
                # window may ride in one coalesced dispatch.
                await self._queue.put(
                    _QueuedInfer(key=request.timesteps, request=request, future=future)
                )
                response = await future
                result = {
                    "response": await self._loop.run_in_executor(
                        None, response.to_dict
                    )
                }
            elif op == "shutdown":
                result = {"stopping": True}
            else:
                raise ValueError(
                    f"unknown op {op!r}; expected ping, info, infer or shutdown"
                )
            return reply_envelope(op, result, request_id=request_id)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - every failure becomes a reply
            return error_envelope(
                f"{type(exc).__name__}: {exc}", op=op, request_id=request_id
            )

    def _run_batch(self, requests: list[InferenceRequest]):
        """Execute one coalesced dispatch (only ever on the single work thread)."""
        infer_many = getattr(self.target, "infer_many", None)
        if infer_many is not None and len(requests) > 1:
            return infer_many(requests)
        return [self.target.infer(request) for request in requests]

    async def _batch_loop(self) -> None:
        """Drain the request queue, coalescing compatible requests."""
        assert self._loop is not None and self._queue is not None
        pending: deque[_QueuedInfer] = deque()
        while True:
            if not pending:
                pending.append(await self._queue.get())
            # Everything already queued joins the candidate set at once.
            with contextlib.suppress(asyncio.QueueEmpty):
                while True:
                    pending.append(self._queue.get_nowait())
            if (
                self.batch_window_s > 0
                and len(pending) < self.max_batch
            ):
                with contextlib.suppress(asyncio.TimeoutError, TimeoutError):
                    pending.append(
                        await asyncio.wait_for(self._queue.get(), self.batch_window_s)
                    )
            # Coalesce the head-of-line request with every compatible
            # follower (FIFO order preserved for the rest).
            key = pending[0].key
            batch: list[_QueuedInfer] = []
            rest: deque[_QueuedInfer] = deque()
            for item in pending:
                if item.key == key and len(batch) < self.max_batch:
                    batch.append(item)
                else:
                    rest.append(item)
            pending = rest
            live = [item for item in batch if not item.future.done()]
            if not live:
                continue
            self.stats["requests"] += len(live)
            self.stats["batches"] += 1
            self.stats["max_coalesced"] = max(self.stats["max_coalesced"], len(live))
            try:
                responses = await self._loop.run_in_executor(
                    self._work, self._run_batch, [item.request for item in live]
                )
            except Exception as exc:  # noqa: BLE001 - surfaced per request
                for item in live:
                    if not item.future.done():
                        item.future.set_exception(exc)
                continue
            for item, response in zip(live, responses):
                if not item.future.done():
                    item.future.set_result(response)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        ordered_tail: asyncio.Task | None = None
        tasks: set[asyncio.Task] = set()
        saw_shutdown = False

        async def process(
            message: dict[str, object] | None,
            error: tuple[str, object, object] | None,
            previous: asyncio.Task | None,
        ) -> None:
            if error is not None:
                text, op, request_id = error
                reply = error_envelope(text, op=op, request_id=request_id)
                is_shutdown = False
            else:
                assert message is not None
                reply = await self._execute(message)
                is_shutdown = message.get("op") == "shutdown"
            if previous is not None:
                # Version-1 requests carry no id, so their replies must
                # leave in arrival order; chain on the previous untagged
                # reply (its own failures were already turned into replies).
                with contextlib.suppress(Exception):
                    await asyncio.shield(previous)
            assert self._loop is not None
            data = await self._loop.run_in_executor(None, _encode_reply_line, reply)
            try:
                async with write_lock:
                    writer.write(data)
                    await writer.drain()
            finally:
                if is_shutdown and self._stop_event is not None:
                    # The reply goes out first so the asking client sees the
                    # acknowledgement — but the stop must happen even if
                    # that client already hung up (fire-and-forget scripts).
                    self._stop_event.set()

        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line longer than the stream limit: the connection
                    # cannot be resynchronised, but the client still gets
                    # told why before the hangup.
                    reply = error_envelope(
                        f"ValueError: request line exceeds the server's "
                        f"{MAX_LINE_BYTES} byte limit"
                    )
                    async with write_lock:
                        writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                        await writer.drain()
                    break
                if not line:
                    break
                text = line.strip()
                if not text:
                    continue
                message: dict[str, object] | None = None
                error: tuple[str, object, object] | None = None
                try:
                    decoded = text.decode("utf-8")
                    if len(text) > _OFFLOAD_PARSE_BYTES:
                        # Parsing megabytes of JSON inline would stall every
                        # other connection; push it to the default executor.
                        message = await asyncio.get_running_loop().run_in_executor(
                            None, parse_envelope, decoded
                        )
                    else:
                        message = parse_envelope(decoded)
                except ValueError as exc:
                    # Best effort to tag the error reply: a line that is
                    # valid JSON but a rejected envelope (bad version, ...)
                    # still carries an id a pipelined client routes by.
                    op = request_id = None
                    if len(text) <= _OFFLOAD_PARSE_BYTES:
                        with contextlib.suppress(ValueError, UnicodeDecodeError):
                            raw = json.loads(text.decode("utf-8"))
                            if isinstance(raw, dict):
                                op, request_id = raw.get("op"), raw.get("id")
                    error = (f"ValueError: {exc}", op, request_id)
                if message is not None and message.get("op") == "shutdown":
                    saw_shutdown = True
                pipelined = message is not None and message.get("id") is not None
                task = asyncio.create_task(
                    process(message, error, None if pipelined else ordered_tail)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
                if not pipelined:
                    ordered_tail = task
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            for task in list(tasks):
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            if saw_shutdown and self._stop_event is not None:
                # A fire-and-forget client may hang up before its shutdown
                # task ran (and the hangup cancels pending tasks above); the
                # op must still win.  Setting the event twice is harmless.
                self._stop_event.set()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- lifecycle ----------------------------------------------------------------

    async def _serve_async(self) -> None:
        self._stop_event = asyncio.Event()
        self._queue = asyncio.Queue()
        # The loop is published LAST: start() returns (and close() may run)
        # as soon as it appears, and close() needs the stop event with it.
        self._loop = asyncio.get_running_loop()
        connections: set[asyncio.Task] = set()

        async def handle(reader, writer) -> None:
            task = asyncio.current_task()
            connections.add(task)
            try:
                await self._handle_client(reader, writer)
            except asyncio.CancelledError:
                # Server shutdown hung up on this client mid-connection;
                # finish cleanly so asyncio's stream machinery (which calls
                # task.exception() from a plain callback) sees a completed
                # task, not a cancelled one.
                pass
            finally:
                connections.discard(task)

        dispatcher = asyncio.create_task(self._batch_loop())
        server = await asyncio.start_server(
            handle, sock=self._sock, limit=MAX_LINE_BYTES
        )
        try:
            await self._stop_event.wait()
        finally:
            dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await dispatcher
            # Hang up on lingering clients: on newer Pythons wait_closed()
            # waits for every handler, and a connected-but-idle client must
            # not stall the shutdown.
            for task in list(connections):
                task.cancel()
            if connections:
                await asyncio.gather(*connections, return_exceptions=True)
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` or a shutdown op."""
        self._serving = True
        try:
            asyncio.run(self._serve_async())
        finally:
            self._serving = False

    def start(self) -> "ChipServer":
        """Serve on a background daemon thread and return self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="chip-server", daemon=True
        )
        self._thread.start()
        # serve_forever owns the listening socket from here; wait until the
        # loop exists so an immediate close() can reach it.
        while self._thread.is_alive() and self._loop is None:
            time.sleep(0.001)
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._work.shutdown(wait=True)
        with contextlib.suppress(OSError):
            self._sock.close()

    def __enter__(self) -> "ChipServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
