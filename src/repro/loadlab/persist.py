"""Versioned JSON persistence shared by the load lab and the benchmarks.

Every artifact under ``benchmarks/results/`` is one JSON document with the
same envelope::

    {
      "schema_version": 1,
      "recorded_at": "2026-08-08T12:34:56Z",
      "<section>": <payload>,          # replace sections
      "runs": [<payload>, ...]         # append sections
    }

:func:`persist_result` is the single write path: the benchmark suite's
``conftest.py`` wraps it in a fixture and the load-lab CLI calls it
directly, so a perf trajectory accumulated across CI runs always parses
with one schema check.  Writes are merge-in-place — a module persisting
section ``"codec"`` never clobbers a sibling's ``"end_to_end"`` section —
and a corrupt or pre-versioned existing file is replaced rather than
crashing the run that would have refreshed it.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = ["SCHEMA_VERSION", "persist_result", "load_results", "default_results_dir"]

SCHEMA_VERSION = 1

#: Environment override for where result documents land (CI artifact dir).
RESULTS_DIR_ENV = "BENCH_RESULTS_DIR"


def default_results_dir() -> Path:
    """``benchmarks/results`` at the repo root, or ``$BENCH_RESULTS_DIR``."""
    override = os.environ.get(RESULTS_DIR_ENV)
    if override:
        return Path(override)
    # src/repro/loadlab/persist.py -> repo root is four parents up.
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def load_results(path: str | Path) -> dict:
    """Read a result document, tolerating absent/corrupt/legacy files."""
    path = Path(path)
    if not path.exists():
        return {}
    try:
        document = json.loads(path.read_text())
    except ValueError:
        return {}
    if not isinstance(document, dict):
        return {}
    version = document.get("schema_version")
    if version is not None and version != SCHEMA_VERSION:
        # A future/foreign schema: start fresh rather than half-merging.
        return {}
    return document


def persist_result(
    path: str | Path,
    section: str,
    payload: object,
    *,
    append: bool = False,
) -> dict:
    """Merge one section into the versioned document at ``path``.

    ``append=False`` replaces ``document[section]`` with ``payload``;
    ``append=True`` appends ``payload`` to the list at ``document[section]``
    (creating it, or resetting it if a legacy non-list value squats there).
    Returns the document as written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = load_results(path)
    document["schema_version"] = SCHEMA_VERSION
    document["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    if append:
        existing = document.get(section)
        if not isinstance(existing, list):
            existing = []
        existing.append(payload)
        document[section] = existing
    else:
        document[section] = payload
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document
