"""Quickstart: map a spiking MLP onto RESPARC and compare it with the CMOS baseline.

This is the five-minute tour of the library:

1. build a synthetic MNIST-like dataset and a small MLP,
2. train it offline and convert it to a rate-coded spiking network,
3. run the functional spiking simulator to measure accuracy and activity,
4. map the network onto RESPARC (64x64 memristive crossbars), and
5. estimate per-classification energy/latency on RESPARC and on the CMOS
   baseline, printing the comparison.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baseline import CmosBaselineModel
from repro.core import ArchitectureConfig, ResparcModel
from repro.datasets import make_dataset
from repro.mapping import map_network, mapping_report
from repro.snn import SpikingSimulator, Trainer, convert_to_snn
from repro.utils.units import format_energy, format_time
from repro.workloads import build_mnist_mlp


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Data and network (a width-scaled MNIST MLP keeps the run fast).
    dataset = make_dataset("mnist", train_samples=256, test_samples=64, seed=0)
    network = build_mnist_mlp(scale=0.3, seed=0)
    train_x = dataset.train_images.reshape(-1, 784)
    test_x = dataset.test_images.reshape(-1, 784)

    # 2. Offline training followed by ANN -> SNN conversion.
    trainer = Trainer(learning_rate=0.005, optimizer="adam", batch_size=32, rng=rng)
    training = trainer.fit(network, train_x, dataset.train_labels, epochs=5)
    print(f"ANN training accuracy: {training.train_accuracy:.2%}")
    snn = convert_to_snn(network, train_x[:64])

    # 3. Functional (golden-model) spiking simulation.
    simulator = SpikingSimulator(timesteps=32, rng=rng)
    result = simulator.run(snn, test_x[:32], dataset.test_labels[:32])
    print(f"SNN accuracy over 32 timesteps: {result.accuracy:.2%}")
    print(f"Mean spike rate across the network: {result.trace.mean_input_rate:.3f}")

    # 4. Map onto RESPARC's reconfigurable hierarchy.
    mapped = map_network(network, crossbar_size=64)
    print()
    print(mapping_report(mapped))

    # 5. Architecture comparison on the measured activity.
    resparc = ResparcModel(config=ArchitectureConfig()).evaluate(mapped, result.trace)
    cmos = CmosBaselineModel().evaluate(network, result.trace)
    print()
    print(f"RESPARC energy/classification: {format_energy(resparc.energy_per_classification_j)}")
    print(f"CMOS    energy/classification: {format_energy(cmos.energy_per_classification_j)}")
    print(f"RESPARC latency/classification: {format_time(resparc.latency_per_classification_s)}")
    print(f"CMOS    latency/classification: {format_time(cmos.latency_per_classification_s)}")
    print(
        f"Energy benefit: {cmos.energy_per_classification_j / resparc.energy_per_classification_j:.0f}x,  "
        f"speedup: {cmos.latency_per_classification_s / resparc.latency_per_classification_s:.0f}x"
    )


if __name__ == "__main__":
    main()
