"""Tests for the network container, IF neurons and spike encoders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.snn import (
    DeterministicRateEncoder,
    IFNeuronParameters,
    IFNeuronPool,
    Network,
    PoissonEncoder,
    spike_train_statistics,
)


class TestNetwork:
    def test_layer_info_counts(self, small_cnn):
        info = small_cnn.layer_info()
        kinds = [i.kind for i in info]
        assert kinds == ["conv", "pool", "reshape", "dense"]
        assert small_cnn.neuron_count == 12 * 12 * 6 + 6 * 6 * 6 + 10
        assert small_cnn.synapse_count == 12 * 12 * 6 * 9 + 6 * 6 * 6 * 4 + 216 * 10

    def test_forward_shape_checks(self, small_mlp, rng):
        with pytest.raises(ValueError):
            small_mlp.forward(rng.random((2, 35)))
        out = small_mlp.forward(rng.random((2, 36)))
        assert out.shape == (2, 10)

    def test_accuracy_and_predict(self, small_mlp, rng):
        x = rng.random((6, 36))
        predictions = small_mlp.predict(x)
        assert predictions.shape == (6,)
        accuracy = small_mlp.accuracy(x, predictions)
        assert accuracy == 1.0

    def test_copy_is_deep(self, small_mlp):
        clone = small_mlp.copy()
        clone.layers[0].weights[:] = 0.0
        assert not np.allclose(small_mlp.layers[0].weights, 0.0)

    def test_summary_contains_all_layers(self, small_cnn):
        text = small_cnn.summary()
        for layer in small_cnn.layers:
            assert layer.name in text

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network((4,), [])

    def test_weighted_layers(self, small_cnn):
        assert len(small_cnn.weighted_layers) == 2


class TestIFNeuron:
    def test_threshold_and_subtract_reset(self):
        pool = IFNeuronPool((1, 2), IFNeuronParameters(threshold=1.0))
        spikes = pool.step(np.array([[0.6, 1.4]]))
        np.testing.assert_allclose(spikes, [[0.0, 1.0]])
        # Subtract reset keeps the residual 0.4 on the second neuron.
        np.testing.assert_allclose(pool.membrane, [[0.6, 0.4]])

    def test_zero_reset_mode(self):
        pool = IFNeuronPool((1, 1), IFNeuronParameters(threshold=1.0, reset_mode="zero"))
        pool.step(np.array([[2.5]]))
        assert pool.membrane[0, 0] == 0.0

    def test_rate_proportional_to_input(self):
        pool = IFNeuronPool((1, 3), IFNeuronParameters(threshold=1.0))
        drive = np.array([[0.1, 0.5, 0.9]])
        for _ in range(100):
            pool.step(drive)
        rates = pool.firing_rate(100)[0]
        np.testing.assert_allclose(rates, [0.1, 0.5, 0.9], atol=0.02)

    def test_leak_reduces_rate(self):
        ideal = IFNeuronPool((1, 1), IFNeuronParameters(threshold=1.0))
        leaky = IFNeuronPool((1, 1), IFNeuronParameters(threshold=1.0, leak=0.8))
        for _ in range(50):
            ideal.step(np.array([[0.3]]))
            leaky.step(np.array([[0.3]]))
        assert leaky.spike_count.sum() < ideal.spike_count.sum()

    def test_refractory_blocks_spikes(self):
        pool = IFNeuronPool((1, 1), IFNeuronParameters(threshold=0.5, refractory_steps=3))
        total = sum(pool.step(np.array([[1.0]]))[0, 0] for _ in range(8))
        assert total <= 2

    def test_shape_validation(self):
        pool = IFNeuronPool((2, 3))
        with pytest.raises(ValueError):
            pool.step(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            IFNeuronPool((0, 3))

    def test_reset_clears_state(self):
        pool = IFNeuronPool((1, 2))
        pool.step(np.array([[2.0, 2.0]]))
        pool.reset()
        assert pool.spike_count.sum() == 0
        assert pool.membrane.sum() == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IFNeuronParameters(threshold=0.0)
        with pytest.raises(ValueError):
            IFNeuronParameters(reset_mode="clip")
        with pytest.raises(ValueError):
            IFNeuronParameters(leak=0.0)


class TestEncoders:
    def test_poisson_rate_matches_intensity(self, rng):
        encoder = PoissonEncoder(rng=rng)
        values = np.full((4, 100), 0.3)
        train = encoder.encode(values, timesteps=200)
        assert train.shape == (200, 4, 100)
        assert train.mean() == pytest.approx(0.3, abs=0.02)

    def test_poisson_max_rate_validation(self, rng):
        with pytest.raises(ValueError):
            PoissonEncoder(rng=rng, max_rate=1.5)

    def test_deterministic_rate_exact(self):
        encoder = DeterministicRateEncoder()
        train = encoder.encode(np.array([[0.25, 0.5, 1.0]]), timesteps=16)
        np.testing.assert_allclose(train.sum(axis=0)[0], [4, 8, 16])

    def test_deterministic_zero_input_never_spikes(self):
        train = DeterministicRateEncoder().encode(np.zeros((2, 5)), timesteps=10)
        assert train.sum() == 0

    def test_timestep_validation(self, rng):
        with pytest.raises(ValueError):
            PoissonEncoder(rng=rng).encode(np.zeros((1, 2)), timesteps=0)

    def test_statistics_zero_packets(self):
        train = np.zeros((4, 64))
        train[:, 0] = 1.0  # only the first packet ever carries spikes
        stats = spike_train_statistics(train, packet_bits=32)
        assert stats["zero_packet_fraction"] == pytest.approx(0.5)
        assert stats["mean_rate"] == pytest.approx(1 / 64)

    def test_statistics_validation(self):
        with pytest.raises(ValueError):
            spike_train_statistics(np.zeros(10), packet_bits=32)
        with pytest.raises(ValueError):
            spike_train_statistics(np.zeros((2, 4)), packet_bits=0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_encoder_rate_property(self, intensity):
        timesteps = 40
        train = DeterministicRateEncoder().encode(np.array([[intensity]]), timesteps)
        expected = intensity * timesteps
        assert abs(train.sum() - expected) <= 1.0
