"""Structural chip simulation driver.

Runs a :class:`~repro.core.resparc.ResparcChip` over a batch of inputs for a
full rate-coding window, collects the chip's component-level event counters
and converts them into the same :class:`~repro.energy.model.EnergyReport`
the analytical model produces, so the two models can be compared directly
on MLP workloads.

Two execution backends are available behind the same interface:

* ``backend="structural"`` — the reference path: one sample at a time
  through the instantiated component hierarchy (packets, buffers, switches).
* ``backend="vectorized"`` — the fast path: the chip is compiled once
  (:mod:`repro.fastpath`) and the whole batch advances through NumPy array
  ops.  Predictions and event counts are identical to the structural path;
  energy totals agree to floating-point accumulation order.  The
  cross-backend contract is enforced by ``tests/test_backend_parity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ArchitectureConfig
from repro.core.resparc import ResparcChip
from repro.core.stats import EventCounters, counters_to_energy
from repro.crossbar.energy import CrossbarEnergyModel
from repro.energy.components import DEFAULT_LIBRARY, ComponentLibrary
from repro.energy.model import EnergyReport
from repro.snn.conversion import SpikingNetwork
from repro.snn.encoding import DeterministicRateEncoder, PoissonEncoder
from repro.utils.validation import check_positive

__all__ = ["ChipRunResult", "ChipSimulator", "CHIP_BACKENDS", "simulate"]

#: Execution backends accepted by :class:`ChipSimulator` and :func:`simulate`.
CHIP_BACKENDS = ("structural", "vectorized")


@dataclass(frozen=True)
class ChipRunResult:
    """Outcome of running a batch of samples on the structural chip."""

    predictions: np.ndarray
    spike_counts: np.ndarray
    accuracy: float | None
    counters: EventCounters
    energy: EnergyReport
    timesteps: int
    backend: str = "structural"


@dataclass
class ChipSimulator:
    """Drives a structurally instantiated chip over encoded spike trains."""

    config: ArchitectureConfig = field(default_factory=ArchitectureConfig)
    library: ComponentLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)
    timesteps: int = 32
    encoder: str = "deterministic"
    backend: str = "structural"
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        check_positive("timesteps", self.timesteps)
        if self.encoder not in ("poisson", "deterministic"):
            raise ValueError(f"encoder must be 'poisson' or 'deterministic', got {self.encoder!r}")
        if self.backend not in CHIP_BACKENDS:
            raise ValueError(
                f"backend must be one of {CHIP_BACKENDS}, got {self.backend!r}"
            )

    def build_chip(self, snn: SpikingNetwork) -> ResparcChip:
        """Instantiate and program a chip for a dense spiking network."""
        return ResparcChip.from_spiking_network(snn, config=self.config, rng=self.rng)

    def _encode(self, inputs: np.ndarray) -> np.ndarray:
        if self.encoder == "poisson":
            return PoissonEncoder(rng=self.rng).encode(inputs, self.timesteps)
        return DeterministicRateEncoder().encode(inputs, self.timesteps)

    def _gather_counters(self, chip: ResparcChip) -> EventCounters:
        counters = EventCounters()
        for cell in chip.neurocells:
            counters.switch_hops += cell.switch_hops
            counters.suppressed_packets += cell.suppressed_packets
            counters.zero_checks += cell.zero_checks
            for mpe in cell.mpes:
                counters.crossbar_evaluations += mpe.crossbar_evaluations
                counters.crossbar_device_energy_j += mpe.crossbar_energy_j
                counters.ibuff_accesses += sum(b.accesses for b in mpe.ibuffs)
                counters.obuff_accesses += sum(b.accesses for b in mpe.obuffs)
                counters.tbuff_accesses += mpe.tbuffer_lookups
                counters.local_control_events += mpe.control.evaluations_issued
                counters.ccu_transfers += mpe.ccu.total_transfers
                counters.neuron_integrations += mpe.neuron_integrations
        counters.io_bus_words += chip.bus.words_transferred
        counters.zero_checks += chip.bus.zero_checks
        counters.input_sram_reads += chip.input_memory.reads
        counters.input_sram_writes += chip.input_memory.writes
        if chip.global_control is not None:
            counters.global_control_events += chip.global_control.flag_updates
        return counters

    def _run_structural(
        self, chip: ResparcChip, spike_train: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, EventCounters]:
        """Reference path: per-sample execution through the component tree.

        Component counters accumulate for the lifetime of the chip instance,
        so the counters of this run are taken as a delta against a snapshot —
        matching the per-run semantics of the vectorized backend even when
        the same chip is reused across runs.
        """
        baseline = self._gather_counters(chip)
        timesteps, batch, _ = spike_train.shape
        spike_counts = np.zeros((batch, chip.output_dim))
        predictions = np.zeros(batch, dtype=int)
        for sample in range(batch):
            chip.reset_state()
            for t in range(timesteps):
                out = chip.step(spike_train[t, sample])
                spike_counts[sample] += out
            final_pool = chip.neuron_pools[chip.layer_order[-1]]
            score = spike_counts[sample] + 1e-3 * final_pool.membrane.reshape(-1)
            predictions[sample] = int(np.argmax(score))
        counters = self._gather_counters(chip).difference(baseline)
        return predictions, spike_counts, counters

    def _run_vectorized(
        self, chip: ResparcChip, spike_train: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, EventCounters]:
        """Fast path: compiled chip, whole-batch NumPy execution.

        The compiled program is cached per chip instance, so repeated runs
        on the same chip pay the compilation cost once.
        """
        from repro.fastpath import VectorizedChipEngine

        outcome = VectorizedChipEngine.from_chip(chip).run_batch(spike_train)
        return outcome.predictions, outcome.spike_counts, outcome.counters

    def run(
        self,
        snn: SpikingNetwork,
        inputs: np.ndarray,
        labels: np.ndarray | None = None,
        chip: ResparcChip | None = None,
    ) -> ChipRunResult:
        """Run a batch of flattened inputs through the selected backend."""
        if chip is not None and chip.config != self.config:
            raise ValueError(
                "the supplied chip was built for a different ArchitectureConfig "
                "than this simulator; latency/energy accounting would mix "
                "configurations"
            )
        chip = chip or self.build_chip(snn)
        x = np.asarray(inputs, dtype=float)
        if x.ndim == 1:
            x = x[np.newaxis]
        x = x.reshape(x.shape[0], -1)
        spike_train = self._encode(x)
        batch = x.shape[0]

        if self.backend == "vectorized":
            predictions, spike_counts, counters = self._run_vectorized(chip, spike_train)
        else:
            predictions, spike_counts, counters = self._run_structural(chip, spike_train)

        # A per-timestep latency of one crossbar read + integration per
        # time-multiplex stage, matching the analytical latency model.
        wall_clock_s = (
            batch
            * self.timesteps
            * (self.config.device.read_pulse_s + self.library.neuron_integration_latency_s)
        )

        counters.neuron_spikes += float(spike_counts.sum())
        energy = counters_to_energy(
            counters,
            library=self.library,
            crossbar_energy=CrossbarEnergyModel(device=self.config.device),
            label=f"resparc-{self.backend}/{snn.name}",
            active_mpes=chip.total_mpes_used,
            active_switches=sum(len(cell.switches) for cell in chip.neurocells),
            duration_s=wall_clock_s,
            sram_access_energy_j=chip.input_memory.access_energy_j(),
            sram_leakage_power_w=chip.input_memory.leakage_power_w(),
        )
        accuracy = None
        if labels is not None:
            accuracy = float(np.mean(predictions == np.asarray(labels, dtype=int)))
        return ChipRunResult(
            predictions=predictions,
            spike_counts=spike_counts,
            accuracy=accuracy,
            counters=counters,
            energy=energy,
            timesteps=self.timesteps,
            backend=self.backend,
        )


def simulate(
    snn: SpikingNetwork,
    inputs: np.ndarray,
    labels: np.ndarray | None = None,
    *,
    backend: str = "structural",
    config: ArchitectureConfig | None = None,
    library: ComponentLibrary | None = None,
    timesteps: int = 32,
    encoder: str = "deterministic",
    rng: np.random.Generator | None = None,
    chip: ResparcChip | None = None,
) -> ChipRunResult:
    """One-call chip simulation facade with backend selection.

    Builds a :class:`ChipSimulator` for the given configuration and runs the
    batch; ``backend`` picks the structural reference path or the vectorized
    fast path (both produce a :class:`ChipRunResult` with directly comparable
    counters and energy).  When a prebuilt ``chip`` is supplied and ``config``
    is not, the chip's own configuration is used.
    """
    if config is None:
        config = chip.config if chip is not None else ArchitectureConfig()
    simulator = ChipSimulator(
        config=config,
        library=library or DEFAULT_LIBRARY,
        timesteps=timesteps,
        encoder=encoder,
        backend=backend,
        rng=rng if rng is not None else np.random.default_rng(0),
    )
    return simulator.run(snn, inputs, labels=labels, chip=chip)
