"""Experiment runner: regenerate every figure of the paper's evaluation.

``python -m repro.experiments.runner`` runs the Fig. 11-14 reproductions with
the default settings and prints the same rows/series the paper reports,
together with the published values for side-by-side comparison.  The
structured results are also returned programmatically for tests and for
EXPERIMENTS.md generation.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace

from repro.experiments.common import ExperimentSettings, WorkloadContext
from repro.experiments.fig11_comparison import Fig11Result, run_fig11
from repro.serve.distributed import EXECUTORS, split_endpoints
from repro.experiments.fig12_breakdown import Fig12Result, run_fig12
from repro.experiments.fig13_eventdriven import Fig13Result, run_fig13
from repro.experiments.fig14_precision import Fig14Result, run_fig14
from repro.utils.logging import RunLogger

__all__ = ["ExperimentSuiteResult", "run_all", "main"]


@dataclass
class ExperimentSuiteResult:
    """Structured results of the whole figure suite."""

    fig11: Fig11Result
    fig12: Fig12Result
    fig13: Fig13Result
    fig14: Fig14Result

    def render(self) -> str:
        """Render every figure's table."""
        return "\n\n".join(
            [
                self.fig11.as_table(),
                self.fig12.as_table(),
                self.fig13.as_table(),
                self.fig14.as_table(),
            ]
        )


def run_all(
    settings: ExperimentSettings | None = None,
    include_accuracy: bool = True,
    logger: RunLogger | None = None,
    validate_chip: bool = False,
) -> ExperimentSuiteResult:
    """Run the full figure suite with a shared workload cache.

    ``validate_chip`` additionally executes the MLP benchmarks on the chip
    simulator (``settings.chip_backend`` selects the structural reference or
    the vectorized fast path) and reports the measured energy in Fig. 11.
    """
    logger = logger or RunLogger(name="experiments", echo=False)
    settings = settings or ExperimentSettings()
    context = WorkloadContext(settings)

    logger.info("running Fig. 11 (energy/speedup comparison)")
    fig11 = run_fig11(context=context, validate_chip=validate_chip)
    logger.info("running Fig. 12 (energy breakdowns vs MCA size)")
    fig12 = run_fig12(context=context)
    logger.info("running Fig. 13 (event-driven savings)")
    fig13 = run_fig13(context=context)
    logger.info("running Fig. 14 (bit-discretisation)")
    fig14 = run_fig14(context=context, include_accuracy=include_accuracy)

    result = ExperimentSuiteResult(fig11=fig11, fig12=fig12, fig13=fig13, fig14=fig14)
    for line in result.render().splitlines():
        logger.result(line)
    return result


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Run the RESPARC figure reproductions")
    parser.add_argument("--quick", action="store_true", help="use the fast settings")
    parser.add_argument(
        "--no-accuracy", action="store_true", help="skip the Fig. 14(a) accuracy sweep"
    )
    parser.add_argument("--timesteps", type=int, default=None, help="override rate-coding window")
    parser.add_argument(
        "--backend",
        choices=["structural", "vectorized"],
        default=None,
        help="chip execution backend for structural cross-validation runs "
        "(implies --validate-chip)",
    )
    parser.add_argument(
        "--validate-chip",
        action="store_true",
        help="execute the MLP benchmarks on the chip simulator and report the "
        "measured energy next to the analytical model in Fig. 11",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker sessions for chip runs: > 1 shards each batch across a "
        "repro.serve.ChipPool (implies --validate-chip)",
    )
    parser.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default=None,
        help="shard executor for pooled chip runs: inline (sequential), "
        "thread (default) or process (one chip per worker process); "
        "needs --jobs >= 2 (implies --validate-chip)",
    )
    parser.add_argument(
        "--endpoint",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="send chip runs to running chip server(s) "
        "(python -m repro.serve.distributed serve) instead of executing "
        "locally; a comma-separated list fans each batch across the servers "
        "through the async inference gateway (implies --validate-chip)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline for remote chip runs: the servers shed "
        "requests queued past it (structured 'deadline_exceeded') and the "
        "gateway stops waiting; needs --endpoint",
    )
    args = parser.parse_args(argv)
    _validate_chip_arguments(parser, args)

    settings = ExperimentSettings.quick() if args.quick else ExperimentSettings()
    if args.timesteps is not None:
        settings = replace(settings, timesteps=args.timesteps)
    if args.backend is not None:
        settings = replace(settings, chip_backend=args.backend)
    if args.jobs is not None:
        settings = replace(settings, chip_jobs=args.jobs)
    if args.executor is not None:
        settings = replace(settings, chip_executor=args.executor)
    if args.endpoint is not None:
        settings = replace(settings, chip_endpoint=args.endpoint)
    if args.deadline is not None:
        settings = replace(settings, chip_deadline_s=args.deadline)
    result = run_all(
        settings=settings,
        include_accuracy=not args.no_accuracy,
        # Chip backend/jobs/executor/endpoint choices only mean something for
        # chip runs, so each of them implies the chip cross-validation pass.
        validate_chip=args.validate_chip
        or args.backend is not None
        or args.jobs is not None
        or args.executor is not None
        or args.endpoint is not None,
    )
    print(result.render())
    return 0


def _validate_chip_arguments(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Reject inconsistent chip-run options up front, before any work runs."""
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.executor is not None and (args.jobs is None or args.jobs < 2):
        parser.error(
            f"--executor {args.executor} selects the ChipPool worker strategy "
            f"and only takes effect with --jobs >= 2 "
            f"(got {'no --jobs' if args.jobs is None else f'--jobs {args.jobs}'})"
        )
    if args.endpoint is not None:
        if args.jobs is not None or args.executor is not None or args.backend is not None:
            parser.error(
                "--endpoint sends chip runs to a remote server, which owns its "
                "own backend/jobs/executor; drop --jobs/--executor/--backend"
            )
        try:
            split_endpoints(args.endpoint)
        except ValueError as exc:
            parser.error(str(exc))
    if args.deadline is not None:
        if args.deadline <= 0:
            parser.error(f"--deadline must be > 0 seconds, got {args.deadline}")
        if args.endpoint is None:
            parser.error(
                "--deadline bounds remote chip runs and needs --endpoint "
                "(local runs have no admission queue to shed from)"
            )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
